"""Tests for the scenario sweep engine (`repro.scenarios.sweep`).

The load-bearing guarantees: a sweep's whole (point, seed) grid goes
through ONE backend batch, derived specs are re-validated immutable
copies, and every registered sweep is byte-identical serial vs
``--jobs N`` and across repeats (smoke variants, same code path).
"""

import multiprocessing

import pytest

from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.scenarios import (
    ScenarioSpec,
    ScenarioSweep,
    describe_sweep,
    format_sweep_result,
    get_scenario,
    get_sweep,
    iter_sweeps,
    register_sweep,
    run_scenario_spec,
    scenario_names,
    sweep_names,
    sweep_scenario,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")


def _tiny_sweep(**overrides) -> ScenarioSweep:
    fields = dict(
        name="sparse-rural/test-axis",
        scenario="sparse-rural",
        field="population",
        values=(2, 4),
        seeds=(1,),
        metrics=("sent", "received"),
    )
    fields.update(overrides)
    return ScenarioSweep(**fields)


class _CountingBackend(SerialBackend):
    """Serial execution that records every batch it receives."""

    def __init__(self):
        self.batches = []

    def run(self, jobs):
        self.batches.append(len(jobs))
        return super().run(jobs)


# ----------------------------------------------------------------------
# Sweep validation
# ----------------------------------------------------------------------
def test_sweep_rejects_unknown_field():
    with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
        _tiny_sweep(field="populaton")


def test_sweep_rejects_unsweepable_fields():
    unsweepable = (
        "name", "seeds", "domain_overrides", "notes",
        "mobility_mix", "traffic_mix", "roam",  # non-scalar fields
    )
    for field in unsweepable:
        with pytest.raises(ValueError, match="cannot be swept"):
            _tiny_sweep(field=field)


def test_sweep_rejects_non_monotone_axis():
    with pytest.raises(ValueError, match="monotone"):
        _tiny_sweep(values=(2, 8, 4))
    with pytest.raises(ValueError, match="monotone"):
        _tiny_sweep(values=(2, 2, 4))  # plateaus are not strict either


def test_sweep_accepts_decreasing_axis():
    assert _tiny_sweep(values=(8, 4, 2)).values == (8, 4, 2)


def test_sweep_rejects_short_empty_or_non_numeric_axis():
    with pytest.raises(ValueError, match="at least 2"):
        _tiny_sweep(values=(2,))
    with pytest.raises(ValueError, match="at least 2"):
        _tiny_sweep(values=())
    with pytest.raises(ValueError, match="numeric"):
        _tiny_sweep(values=("a", "b"))


def test_sweep_rejects_empty_metrics_seeds_and_override_key():
    with pytest.raises(ValueError, match="metrics"):
        _tiny_sweep(metrics=())
    with pytest.raises(ValueError, match="seeds"):
        _tiny_sweep(seeds=())
    with pytest.raises(ValueError, match="domain_overrides key"):
        _tiny_sweep(field="domain_overrides.")


def test_derive_integral_override_keys_reject_fractional_values():
    # Int-typed domain parameters (buffer_size, guard_channels, ...)
    # get the same integral check as int-typed spec fields.
    base = get_scenario("campus-dense")
    sweep = _tiny_sweep(
        scenario="campus-dense",
        field="domain_overrides.buffer_size",
        values=(16, 32),
    )
    assert sweep.derive(base, 32.0).domain_overrides["buffer_size"] == 32
    with pytest.raises(ValueError, match="integral"):
        sweep.derive(base, 16.5)


def test_sweep_rejects_typod_override_key_eagerly():
    # Eager validation must also cover the dotted axis: a key the
    # domain constructor doesn't accept fails at construction, not as
    # a TypeError halfway through a run.
    with pytest.raises(ValueError, match="unknown domain override key"):
        _tiny_sweep(field="domain_overrides.wired_bandwith")
    ok = _tiny_sweep(field="domain_overrides.wired_bandwidth")
    assert ok.axis_label() == "wired_bandwidth"


# ----------------------------------------------------------------------
# Spec derivation: immutable, re-validated rebinding
# ----------------------------------------------------------------------
def test_derive_rebinding_is_immutable_and_validated():
    base = get_scenario("sparse-rural")
    sweep = _tiny_sweep()
    derived = sweep.derive(base, 4)
    assert derived.population == 4 and base.population == 5
    assert derived.mobility_mix == base.mobility_mix
    # Integral floats coerce to int for int fields; others error.
    assert sweep.derive(base, 4.0).population == 4
    with pytest.raises(ValueError, match="integral"):
        sweep.derive(base, 4.5)


def test_derive_integrality_follows_the_annotation_not_the_value():
    # An int handed to the float-annotated `duration` field must not
    # turn the axis integral: fractional values stay legal.
    base = get_scenario("sparse-rural").replace(duration=4)
    sweep = _tiny_sweep(field="duration", values=(2.5, 5.5))
    assert sweep.derive(base, 2.5).duration == 2.5


def test_derive_invalid_value_names_the_sweep_and_value():
    base = get_scenario("sparse-rural")
    with pytest.raises(ValueError, match=r"test-axis.*population=0"):
        _tiny_sweep(values=(0, 4)).derive(base, 0)


def test_derive_domain_override_merges_with_base_overrides():
    base = get_scenario("campus-dense")
    assert base.domain_overrides  # the choked backhaul must be present
    sweep = _tiny_sweep(
        scenario="campus-dense",
        field="domain_overrides.wired_delay",
        values=(0.001, 0.002),
    )
    derived = sweep.derive(base, 0.002)
    assert derived.domain_overrides["wired_delay"] == 0.002
    for key, value in base.domain_overrides.items():
        assert derived.domain_overrides[key] == value


def test_register_sweep_validates_eagerly_and_rejects_duplicates():
    with pytest.raises(KeyError, match="unknown scenario"):
        register_sweep(_tiny_sweep(scenario="no-such-scenario"))
    with pytest.raises(ValueError, match="invalid spec"):
        register_sweep(_tiny_sweep(values=(0, 4)))  # population 0
    existing = get_sweep(sweep_names()[0])
    with pytest.raises(ValueError, match="already registered"):
        register_sweep(existing)
    register_sweep(existing, replace=True)  # idempotent with replace


def test_get_sweep_unknown_name():
    with pytest.raises(KeyError, match="unknown sweep"):
        get_sweep("no-such-sweep")


# ----------------------------------------------------------------------
# Registry integrity
# ----------------------------------------------------------------------
def test_registry_ships_at_least_five_sweeps_over_real_scenarios():
    sweeps = iter_sweeps()
    assert len(sweeps) >= 5
    names = sweep_names()
    assert len(set(names)) == len(names)
    for sweep in sweeps:
        assert sweep.scenario in scenario_names()
        assert sweep.name.startswith(sweep.scenario + "/")
        assert len(sweep.values) >= 2


def test_registry_covers_the_papers_axes():
    fields = {sweep.field for sweep in iter_sweeps()}
    assert "population" in fields  # load axis
    assert any(f.startswith("domain_overrides.") for f in fields)  # backhaul
    assert "hotspot_fraction" in fields  # offered-load axis
    assert "pico_cells" in fields  # cell-layout axis


def test_registered_metrics_exist_in_scenario_output():
    # Each sweep's metrics must exist in the output of its OWN derived
    # spec (the air_* keys only exist when the axis enables channels,
    # so a shared reference run would let a legacy sweep reference
    # contention-only metrics and crash mid-run instead of here).
    for sweep in iter_sweeps():
        spec = sweep.derive(
            get_scenario(sweep.scenario).smoke(), sweep.values[0]
        )
        metrics = set(run_scenario_spec(spec, seed=1))
        missing = set(sweep.metrics) - metrics
        assert not missing, f"{sweep.name} extracts unknown metrics {missing}"


# ----------------------------------------------------------------------
# Execution: one batch, correct shape, CIs
# ----------------------------------------------------------------------
def test_sweep_scenario_dispatches_one_batch_for_the_whole_grid():
    backend = _CountingBackend()
    sweep = _tiny_sweep(seeds=(1, 2))
    result = sweep_scenario(sweep, backend=backend)
    assert backend.batches == [len(sweep.values) * 2]  # points x seeds, once
    assert result.x_values == list(sweep.values)
    assert set(result.series) == set(sweep.metrics)
    assert all(len(v) == len(sweep.values) for v in result.series.values())
    assert len(result.replications) == len(sweep.values)
    for replication in result.replications:
        estimate = replication.metrics["sent"]
        assert estimate.n == 2
        assert estimate.half_width >= 0.0


def test_sweep_scenario_population_axis_reaches_the_builder():
    result = sweep_scenario(_tiny_sweep(), backend=SerialBackend())
    assert result.series  # population metric reports the derived spec
    populations = [
        replication.mean("population") for replication in result.replications
    ]
    assert populations == [2.0, 4.0]


def test_sweep_scenario_smoke_shrinks_points_and_seeds():
    sweep = get_sweep("sparse-rural/population")
    result = sweep_scenario(sweep, backend=SerialBackend(), smoke=True)
    assert result.x_values == list(sweep.values[:2])
    assert all(r.metrics["sent"].n == 1 for r in result.replications)


def test_format_sweep_result_has_ci_columns_per_point():
    sweep = _tiny_sweep(seeds=(1, 2))
    result = sweep_scenario(sweep, backend=SerialBackend())
    text = format_sweep_result(sweep, result, seeds=sweep.seeds)
    lines = text.splitlines()
    assert "sent_ci95" in lines[1] and "received_ci95" in lines[1]
    assert "2 seeds/point: 1, 2" in lines[0]
    # one data row per axis point, after title + header + rule
    assert len(lines) == 3 + len(sweep.values)


def test_describe_sweep_mentions_axis_and_values():
    text = describe_sweep("campus-dense/backhaul")
    assert "domain_overrides.wired_bandwidth" in text
    assert "campus-dense" in text and "mean_delay" in text


# ----------------------------------------------------------------------
# Determinism: the sweep engine's core guarantee
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", [sweep.name for sweep in iter_sweeps()])
def test_sweep_repeat_is_byte_identical(name):
    first = sweep_scenario(name, backend=SerialBackend(), smoke=True)
    second = sweep_scenario(name, backend=SerialBackend(), smoke=True)
    assert first.series == second.series
    assert first.text == second.text
    assert [r.samples for r in first.replications] == [
        r.samples for r in second.replications
    ]


@needs_fork
@pytest.mark.parametrize("name", [sweep.name for sweep in iter_sweeps()])
def test_sweep_serial_vs_pool_is_byte_identical(name):
    serial = sweep_scenario(name, backend=SerialBackend(), smoke=True)
    pooled = sweep_scenario(name, backend=ProcessPoolBackend(2), smoke=True)
    assert serial.series == pooled.series
    assert [r.samples for r in serial.replications] == [
        r.samples for r in pooled.replications
    ]
    smoke = get_sweep(name).smoke()
    assert format_sweep_result(smoke, serial) == format_sweep_result(
        smoke, pooled
    )


def test_custom_base_spec_override():
    base = ScenarioSpec(
        name="tiny-sweep-base",
        description="test spec",
        population=3,
        duration=3.0,
        mobility_mix={"stationary": 1.0},
        traffic_mix={"poisson-data": 0.5, "idle": 0.5},
        seeds=(7,),
    )
    result = sweep_scenario(_tiny_sweep(values=(2, 3)), base=base)
    assert [r.mean("population") for r in result.replications] == [2.0, 3.0]


def test_custom_base_spec_with_unregistered_scenario_and_smoke():
    # base= must satisfy the whole run, including smoke seed
    # resolution, without touching the catalog.
    base = ScenarioSpec(
        name="unregistered-base",
        description="test spec",
        population=3,
        duration=3.0,
        mobility_mix={"stationary": 1.0},
        traffic_mix={"poisson-data": 0.5, "idle": 0.5},
        seeds=(5, 6),
    )
    sweep = _tiny_sweep(scenario="not-in-catalog", seeds=None)
    result = sweep_scenario(sweep, base=base, smoke=True)
    assert result.x_values == [2, 4]
    assert all(r.metrics["sent"].n == 1 for r in result.replications)


def test_ci_column_label_follows_the_computed_confidence():
    sweep = _tiny_sweep(seeds=(1, 2))
    result = sweep_scenario(sweep, backend=SerialBackend(), confidence=0.99)
    text = format_sweep_result(sweep, result)
    assert "sent_ci99" in text and "ci95" not in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_scenario_list_includes_sweeps(capsys):
    from repro.cli import main

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in sweep_names():
        assert name in out


def test_cli_scenario_describe_resolves_sweeps(capsys):
    from repro.cli import main

    assert main(["scenario", "describe", "flash-crowd/hotspot-fraction"]) == 0
    assert "hotspot_fraction" in capsys.readouterr().out


def test_cli_sweep_rejects_unknown_and_bad_jobs(capsys):
    from repro.cli import main

    assert main(["scenario", "sweep", "nope/axis"]) == 2
    assert "unknown sweep" in capsys.readouterr().err
    assert main(["scenario", "sweep", "sparse-rural/population", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_sweep_smoke_writes_table_and_figure(capsys, tmp_path):
    from repro.cli import main

    argv = [
        "scenario", "sweep", "sparse-rural/population", "--smoke",
        "-o", str(tmp_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    table = tmp_path / "sweep_sparse-rural_population.txt"
    assert table.exists()
    assert table.read_text().strip() in out
    figures = [
        path
        for path in tmp_path.iterdir()
        if path.name.startswith("sweep_sparse-rural_population.figure")
        or path.suffix == ".png"
    ]
    assert figures, "sweep must emit a figure file"
    assert "figure written to" in out


@needs_fork
def test_cli_sweep_jobs_flag_matches_serial_output(capsys, tmp_path):
    from repro.cli import main

    serial_dir, pooled_dir = tmp_path / "serial", tmp_path / "pooled"
    argv = ["scenario", "sweep", "sparse-rural/population", "--smoke"]
    assert main(argv + ["-o", str(serial_dir)]) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--jobs", "2", "-o", str(pooled_dir)]) == 0
    pooled_out = capsys.readouterr().out
    # Strip wall-clock and path lines; everything else must match.
    strip = lambda text: [
        line
        for line in text.splitlines()
        if not line.startswith(("[", "figure written to"))
    ]
    assert strip(serial_out) == strip(pooled_out)
    serial_files = sorted(p.name for p in serial_dir.iterdir())
    assert serial_files == sorted(p.name for p in pooled_dir.iterdir())
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (
            pooled_dir / name
        ).read_bytes(), f"{name} differs between serial and --jobs 2"
