"""Property-style determinism tests over randomized mini-specs.

The kernel/net property files use hypothesis, which the CI environment
does not install — this layer instead derives each mini-spec from a
seeded ``random.Random`` and pytest parametrization, so the same cases
run everywhere, deterministically, with no optional dependency.

Four properties, each over a family of generated specs (random
population, duration, mobility/traffic mixes, topology, stack):

1. repeat == repeat — one ``(spec, seed)`` pair is byte-identical
   across runs in one process;
2. serial == pool(2) — the execution backends add no nondeterminism;
3. fluid-off == legacy — a spec with ``fluid=None`` and the same spec
   with ``fluid={"population": 0}`` are byte-identical, across every
   registered stack: the hybrid layer is invisible until enabled;
4. shards(1) == shards(2) — conservative spatial decomposition (see
   :mod:`repro.shard`) changes wall-clock distribution, never a
   metric byte, across every registered stack.
"""

import multiprocessing
import random

import pytest

from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.scenarios import replicate_scenario, run_scenario_spec
from repro.scenarios.spec import MOBILITY_MODELS, TRAFFIC_KINDS, ScenarioSpec
from repro.stacks import stack_names

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

#: Seeds of the generated mini-spec family.  Each seed is one case; add
#: more to widen coverage (every case costs a couple of scenario runs).
CASE_SEEDS = (11, 23, 37, 58, 71, 94)


def _mix(rng: random.Random, keys) -> dict[str, float]:
    """A random mix over 1-3 of ``keys`` with fractions summing to 1."""
    chosen = rng.sample(sorted(keys), rng.randint(1, 3))
    weights = [rng.randint(1, 5) for _ in chosen]
    total = sum(weights)
    return {key: weight / total for key, weight in zip(chosen, weights)}


def random_mini_spec(case_seed: int, channels: bool | None = None) -> ScenarioSpec:
    """One deterministic mini-spec drawn from ``case_seed``.

    Small on purpose (population 2-5, a few seconds) so every property
    below stays a sub-second scenario run; ``channels`` forces the
    shared-air mode on/off, ``None`` lets the generator pick.
    """
    rng = random.Random(case_seed)
    if channels is None:
        channels = rng.random() < 0.5
    return ScenarioSpec(
        name=f"prop-mini-{case_seed}",
        description="generated property-test mini-spec",
        population=rng.randint(2, 5),
        duration=rng.choice((4.0, 5.0, 6.0)),
        mobility_mix=_mix(rng, MOBILITY_MODELS),
        traffic_mix=_mix(rng, TRAFFIC_KINDS),
        seeds=(1,),
        domains=rng.choice((1, 2)),
        pico_cells=rng.choice((0, 2)),
        macro_channel_bandwidth=2e6 if channels else None,
        stack=rng.choice(sorted(stack_names())),
        warmup=1.0,
        drain=1.0,
    )


def test_generator_is_deterministic_and_varied():
    """The family itself is stable (same seed, same spec) and actually
    exercises both channel modes and more than one stack."""
    for case_seed in CASE_SEEDS:
        assert random_mini_spec(case_seed) == random_mini_spec(case_seed)
    specs = [random_mini_spec(case_seed) for case_seed in CASE_SEEDS]
    assert len({spec.channels_enabled() for spec in specs}) == 2
    assert len({spec.stack for spec in specs}) > 1


@pytest.mark.parametrize("case_seed", CASE_SEEDS)
def test_generated_spec_repeat_same_seed_is_byte_identical(case_seed):
    spec = random_mini_spec(case_seed)
    first = run_scenario_spec(spec, seed=1)
    second = run_scenario_spec(spec, seed=1)
    assert first == second
    assert all(isinstance(value, float) for value in first.values())


@needs_fork
@pytest.mark.parametrize("case_seed", CASE_SEEDS[:3])
def test_generated_spec_serial_vs_pool_is_byte_identical(case_seed):
    spec = random_mini_spec(case_seed)
    seeds = [1, 2]
    serial = replicate_scenario(spec, seeds=seeds, backend=SerialBackend())
    pooled = replicate_scenario(spec, seeds=seeds, backend=ProcessPoolBackend(2))
    assert serial.samples == pooled.samples
    assert serial.metrics == pooled.metrics


@pytest.mark.parametrize("case_seed", CASE_SEEDS)
def test_fluid_population_zero_is_byte_identical_to_fluid_none(case_seed):
    """An empty background block must wire nothing: ``population=0``
    and ``fluid=None`` produce byte-identical metrics (and no
    ``fluid.*`` keys — legacy tables keep their shape)."""
    spec = random_mini_spec(case_seed, channels=True)
    legacy = run_scenario_spec(spec, seed=1)
    disabled = run_scenario_spec(
        spec.replace(fluid={"population": 0}), seed=1
    )
    assert legacy == disabled
    assert not any(key.startswith("fluid.") for key in legacy)


@pytest.mark.parametrize("case_seed", CASE_SEEDS)
def test_generated_spec_sharded_run_is_byte_identical(case_seed):
    """The shard determinism contract over the randomized family:
    ``shards=2`` (thread transport, so the property runs on fork-less
    platforms too) produces the byte-identical metric dict."""
    from repro.shard import LocalTransport, run_scenario_spec_sharded

    spec = random_mini_spec(case_seed)
    serial = run_scenario_spec(spec, seed=1)
    sharded = run_scenario_spec_sharded(
        spec, 1, 2, transport=LocalTransport()
    )
    assert serial == sharded


@pytest.mark.parametrize("stack", sorted(stack_names()))
def test_sharded_run_identity_holds_on_every_stack(stack):
    """shards(1) == shards(2), explicitly per registered stack, on a
    two-domain spec (inter-domain handoffs reachable) — the randomized
    family above only samples stacks and topologies."""
    from repro.shard import LocalTransport, run_scenario_spec_sharded

    spec = random_mini_spec(CASE_SEEDS[1]).replace(
        name=f"prop-shard-{stack}", stack=stack, domains=2
    )
    serial = run_scenario_spec_sharded(spec, 1, 1)
    sharded = run_scenario_spec_sharded(
        spec, 1, 2, transport=LocalTransport()
    )
    assert serial == sharded
    assert serial == run_scenario_spec(spec, seed=1)


@needs_fork
def test_sharded_run_is_byte_identical_across_processes():
    """The real cross-process transport (fork + pipes) preserves the
    same contract the thread transport proves above."""
    from repro.shard import PipeTransport, run_scenario_spec_sharded

    spec = random_mini_spec(CASE_SEEDS[2]).replace(
        name="prop-shard-pipe", domains=2
    )
    serial = run_scenario_spec(spec, seed=1)
    sharded = run_scenario_spec_sharded(
        spec, 1, 2, transport=PipeTransport()
    )
    assert serial == sharded


@pytest.mark.parametrize("stack", sorted(stack_names()))
def test_fluid_off_identity_holds_on_every_stack(stack):
    """The fluid-off contract per registered stack, explicitly — the
    randomized family above only samples stacks."""
    spec = random_mini_spec(CASE_SEEDS[0], channels=True).replace(
        name=f"prop-fluid-{stack}", stack=stack
    )
    legacy = run_scenario_spec(spec, seed=1)
    disabled = run_scenario_spec(spec.replace(fluid={"population": 0}), seed=1)
    assert legacy == disabled
    assert not any(key.startswith("fluid.") for key in legacy)
