"""Tests for the paper's cell tables (§3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multitier import CellTable, TablePair
from repro.net import Node, ip
from repro.sim import Simulator


def make_table(lifetime=5.0):
    sim = Simulator()
    table = CellTable(sim, "micro", record_lifetime=lifetime)
    node = Node(sim, "child")
    return sim, table, node


def test_store_and_get():
    sim, table, node = make_table()
    table.store(ip("10.1.0.1"), node)
    record = table.get(ip("10.1.0.1"))
    assert record is not None
    assert record.via is node
    assert not record.is_direct


def test_direct_record():
    sim, table, _node = make_table()
    table.store(ip("10.1.0.1"), None)
    record = table.get(ip("10.1.0.1"))
    assert record.is_direct


def test_record_expires():
    sim, table, node = make_table(lifetime=2.0)
    table.store(ip("10.1.0.1"), node)
    sim.timeout(3.0)
    sim.run()
    assert table.get(ip("10.1.0.1")) is None
    assert table.expirations == 1


def test_refresh_extends_expiry():
    sim, table, node = make_table(lifetime=2.0)
    table.store(ip("10.1.0.1"), node)
    sim.timeout(1.5)
    sim.run()
    table.store(ip("10.1.0.1"), node)
    sim.timeout(1.5)
    sim.run()
    assert table.get(ip("10.1.0.1")) is not None


def test_delete_record():
    sim, table, node = make_table()
    table.store(ip("10.1.0.1"), node)
    assert table.delete(ip("10.1.0.1"))
    assert not table.delete(ip("10.1.0.1"))
    assert table.get(ip("10.1.0.1")) is None
    assert table.deletes == 1


def test_hit_miss_counters():
    sim, table, node = make_table()
    table.store(ip("10.1.0.1"), node)
    table.get(ip("10.1.0.1"))
    table.get(ip("10.1.0.2"))
    assert table.hits == 1
    assert table.misses == 1


def test_purge_expired():
    sim, table, node = make_table(lifetime=1.0)
    table.store(ip("10.1.0.1"), node)
    table.store(ip("10.1.0.2"), node)
    sim.timeout(2.0)
    sim.run()
    assert table.purge_expired() == 2
    assert len(table) == 0


def test_invalid_lifetime():
    sim = Simulator()
    with pytest.raises(ValueError):
        CellTable(sim, "micro", record_lifetime=0.0)


# ----------------------------------------------------------------------
# TablePair: the paper's micro-then-macro lookup
# ----------------------------------------------------------------------
def make_pair(macro=True, lifetime=5.0):
    sim = Simulator()
    pair = TablePair(sim, record_lifetime=lifetime, has_macro_table=macro)
    node = Node(sim, "child")
    return sim, pair, node


def test_micro_bs_has_no_macro_table():
    _sim, pair, _node = make_pair(macro=False)
    assert pair.macro_table is None


def test_micro_served_record_goes_to_micro_table():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=False)
    assert ip("10.1.0.1") in pair.micro_table
    assert ip("10.1.0.1") not in pair.macro_table


def test_macro_served_record_goes_to_macro_table():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=True)
    assert ip("10.1.0.1") in pair.macro_table
    assert ip("10.1.0.1") not in pair.micro_table


def test_lookup_probes_micro_first():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=False)
    record, probes = pair.lookup(ip("10.1.0.1"))
    assert record is not None
    assert probes == 1


def test_lookup_falls_back_to_macro_table():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=True)
    record, probes = pair.lookup(ip("10.1.0.1"))
    assert record is not None
    assert probes == 2


def test_lookup_miss_costs_both_probes():
    _sim, pair, _node = make_pair()
    record, probes = pair.lookup(ip("10.9.9.9"))
    assert record is None
    assert probes == 2


def test_tier_switch_supersedes_old_record():
    """An MN that moved micro->macro must not leave a stale micro record
    shadowing the macro one (lookup order would hit it first)."""
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=False)
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=True)
    assert ip("10.1.0.1") not in pair.micro_table
    record, probes = pair.lookup(ip("10.1.0.1"))
    assert record is not None and probes == 2


def test_pair_delete_clears_both():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=True)
    assert pair.delete(ip("10.1.0.1"))
    record, _ = pair.lookup(ip("10.1.0.1"))
    assert record is None


def test_total_records():
    _sim, pair, node = make_pair()
    pair.store(ip("10.1.0.1"), node, serving_tier_is_macro=False)
    pair.store(ip("10.1.0.2"), node, serving_tier_is_macro=True)
    assert pair.total_records() == 2


@settings(max_examples=40, deadline=None)
@given(
    moves=st.lists(st.booleans(), min_size=1, max_size=12),
)
def test_property_exactly_one_live_record_per_mobile(moves):
    """However a mobile bounces between tiers, the pair never holds two
    live records for it."""
    sim = Simulator()
    pair = TablePair(sim, record_lifetime=100.0, has_macro_table=True)
    node = Node(sim, "child")
    mobile = ip("10.1.0.1")
    for is_macro in moves:
        pair.store(mobile, node, serving_tier_is_macro=is_macro)
        live = int(mobile in pair.micro_table) + int(mobile in pair.macro_table)
        assert live == 1
    record, _ = pair.lookup(mobile)
    assert record is not None
