"""Tests for IPv4 addresses, prefixes and allocation."""

import pytest

from repro.net import AddressAllocator, IPAddress, Prefix, ip


def test_parse_and_format_roundtrip():
    assert str(ip("10.1.2.3")) == "10.1.2.3"
    assert str(ip("0.0.0.0")) == "0.0.0.0"
    assert str(ip("255.255.255.255")) == "255.255.255.255"


def test_address_from_int():
    assert str(IPAddress(0x0A000001)) == "10.0.0.1"
    assert int(ip("10.0.0.1")) == 0x0A000001


def test_address_equality_and_hash():
    assert ip("10.0.0.1") == ip("10.0.0.1")
    assert ip("10.0.0.1") == 0x0A000001
    assert ip("10.0.0.1") != ip("10.0.0.2")
    assert len({ip("10.0.0.1"), ip("10.0.0.1")}) == 1


def test_address_ordering():
    assert ip("10.0.0.1") < ip("10.0.0.2")
    assert ip("9.255.255.255") < ip("10.0.0.0")


def test_address_arithmetic():
    assert ip("10.0.0.1") + 5 == ip("10.0.0.6")
    assert ip("10.0.0.255") + 1 == ip("10.0.1.0")


@pytest.mark.parametrize(
    "bad", ["10.0.0", "10.0.0.0.0", "10.0.0.256", "ten.zero.zero.one", "1.2.3.-4"]
)
def test_malformed_addresses_rejected(bad):
    with pytest.raises(ValueError):
        ip(bad)


def test_address_out_of_range_rejected():
    with pytest.raises(ValueError):
        IPAddress(1 << 32)
    with pytest.raises(ValueError):
        IPAddress(-1)


def test_prefix_contains():
    prefix = Prefix("10.1.0.0/16")
    assert ip("10.1.2.3") in prefix
    assert ip("10.2.0.0") not in prefix
    assert ip("10.1.255.255") in prefix


def test_prefix_normalizes_network():
    prefix = Prefix("10.1.2.3/16")
    assert str(prefix) == "10.1.0.0/16"


def test_prefix_zero_length_matches_everything():
    default = Prefix("0.0.0.0/0")
    assert ip("1.2.3.4") in default
    assert ip("255.0.0.1") in default


def test_prefix_32_matches_exactly():
    host = Prefix("10.0.0.1/32")
    assert ip("10.0.0.1") in host
    assert ip("10.0.0.2") not in host


def test_prefix_invalid_length():
    with pytest.raises(ValueError):
        Prefix("10.0.0.0/33")
    with pytest.raises(ValueError):
        Prefix("10.0.0.0", -1)


def test_prefix_hosts_iterator():
    prefix = Prefix("192.168.1.0/24")
    hosts = list(prefix.hosts(3))
    assert [str(host) for host in hosts] == [
        "192.168.1.1",
        "192.168.1.2",
        "192.168.1.3",
    ]


def test_prefix_hosts_overflow_rejected():
    prefix = Prefix("192.168.1.0/30")
    with pytest.raises(ValueError):
        list(prefix.hosts(10))


def test_allocator_sequential_unique():
    allocator = AddressAllocator("10.5.0.0/24")
    a = allocator.allocate()
    b = allocator.allocate()
    assert a != b
    assert a in Prefix("10.5.0.0/24")
    assert b in Prefix("10.5.0.0/24")


def test_allocator_exhaustion():
    allocator = AddressAllocator("10.5.0.0/30")
    allocator.allocate()
    with pytest.raises(RuntimeError):
        allocator.allocate()
        allocator.allocate()
