"""Tests for Resource, GuardedChannelPool and Store primitives."""

import pytest

from repro.sim import (
    FilterStore,
    GuardedChannelPool,
    Interrupt,
    Preempted,
    Resource,
    Simulator,
    Store,
)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first = resource.request()
    second = resource.request()
    third = resource.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.count == 2
    assert resource.queued == 1


def test_resource_release_grants_next_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def user(sim, resource, name, hold):
        request = resource.request()
        yield request
        log.append((sim.now, name, "acquire"))
        yield sim.timeout(hold)
        resource.release(request)
        log.append((sim.now, name, "release"))

    sim.process(user(sim, resource, "a", 3.0))
    sim.process(user(sim, resource, "b", 2.0))
    sim.run()
    assert log == [
        (0.0, "a", "acquire"),
        (3.0, "a", "release"),
        (3.0, "b", "acquire"),
        (5.0, "b", "release"),
    ]


def test_resource_priority_order():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def user(sim, resource, name, priority):
        with resource.request(priority=priority) as request:
            yield request
            order.append(name)
            yield sim.timeout(1.0)

    def starter(sim, resource):
        # Take the resource, let the others queue, then see who wins.
        with resource.request() as request:
            yield request
            yield sim.timeout(1.0)

    sim.process(starter(sim, resource))

    def spawn_later(sim):
        yield sim.timeout(0.1)
        sim.process(user(sim, resource, "low", 5))
        sim.process(user(sim, resource, "high", 1))

    sim.process(spawn_later(sim))
    sim.run()
    assert order == ["high", "low"]


def test_request_context_manager_releases():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def user(sim, resource):
        with resource.request() as request:
            yield request
            yield sim.timeout(1.0)

    sim.process(user(sim, resource))
    sim.run()
    assert resource.count == 0
    assert resource.free == 1


def test_preemption_evicts_lower_priority_user():
    sim = Simulator()
    resource = Resource(sim, capacity=1, preemptive=True)
    log = []

    def victim(sim, resource):
        request = resource.request(priority=10)
        yield request
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            assert isinstance(interrupt.cause, Preempted)
            log.append(("victim-preempted", sim.now))

    def bully(sim, resource):
        yield sim.timeout(5.0)
        request = resource.request(priority=0, preempt=True)
        yield request
        log.append(("bully-acquired", sim.now))

    sim.process(victim(sim, resource))
    sim.process(bully(sim, resource))
    sim.run()
    assert ("victim-preempted", 5.0) in log
    assert ("bully-acquired", 5.0) in log


def test_preempt_flag_requires_preemptive_resource():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(ValueError):
        resource.request(preempt=True)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_cancel_queued_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()
    assert holder.triggered
    waiting = resource.request()
    assert not waiting.triggered
    resource.release(waiting)  # cancel while queued
    resource.release(holder)
    assert resource.count == 0
    assert not waiting.triggered


def test_guarded_pool_blocks_new_calls_before_handoffs():
    sim = Simulator()
    pool = GuardedChannelPool(sim, capacity=3, guard=1)
    # Two new calls fill the unguarded portion.
    assert pool.admit_new_call() is not None
    assert pool.admit_new_call() is not None
    # Third new call hits the guard band.
    assert pool.admit_new_call() is None
    # Handoff may still take the guarded channel.
    handoff = pool.admit_handoff()
    assert handoff is not None
    # Now everything is full, even for handoffs.
    assert pool.admit_handoff() is None


def test_guarded_pool_invalid_guard():
    sim = Simulator()
    with pytest.raises(ValueError):
        GuardedChannelPool(sim, capacity=2, guard=2)


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for item in "abc":
            yield store.put(item)
            yield sim.timeout(1.0)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert [item for _t, item in got] == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(4.0)
        yield store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(4.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim, store):
        yield store.put(1)
        log.append(("put-1", sim.now))
        yield store.put(2)
        log.append(("put-2", sim.now))

    def consumer(sim, store):
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert ("put-1", 0.0) in log
    assert ("put-2", 5.0) in log


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_get() is None
    assert store.try_put("x")
    assert not store.try_put("y")  # full
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_filter_store_selects_matching_item():
    sim = Simulator()
    store = FilterStore(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda item: item % 2 == 0)
        got.append(item)

    def producer(sim, store):
        yield store.put(1)
        yield store.put(3)
        yield sim.timeout(1.0)
        yield store.put(4)

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)
