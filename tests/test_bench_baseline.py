"""Shape tests for the committed benchmark baseline (S3).

``benchmarks/BENCH_kernel.json`` is collected by
``tools/update_bench_baseline.py`` from the kernel-throughput and
per-stack scenario benches.  Timings are machine-dependent and NOT
pinned; these tests pin the *shape* — the file parses, carries the
schema, passes the tool's own ``--check`` validation, and covers every
kernel bench plus one per-stack entry for every registered protocol
stack (so registering a new stack without re-collecting the baseline
fails here, eagerly).
"""

import importlib.util
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_kernel.json"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "update_bench_baseline", REPO / "tools" / "update_bench_baseline.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_baseline_exists_and_passes_shape_check():
    tool = _load_tool()
    baseline = json.loads(BASELINE.read_text())
    assert tool.check(baseline) == []


def test_baseline_covers_kernel_and_every_stack():
    from repro.stacks import stack_names

    entries = json.loads(BASELINE.read_text())["entries"]
    for name in (
        "test_bench_kernel_event_throughput",
        "test_bench_kernel_callback_throughput",
        "test_bench_packet_forwarding_throughput",
    ):
        assert name in entries, f"kernel bench {name} missing from baseline"
    for stack in stack_names():
        key = f"test_bench_scenario_stack_smoke[{stack}]"
        assert key in entries, (
            f"stack {stack!r} has no baseline entry; re-run "
            f"tools/update_bench_baseline.py"
        )


def test_baseline_covers_shard_scaling_curve():
    """Every point of the shard-scaling curve (see
    ``benchmarks/bench_shard_scaling.py``) has a baseline entry, so the
    CI tolerance gate covers the conservative-sync overhead too."""
    spec = importlib.util.spec_from_file_location(
        "bench_shard_scaling", REPO / "benchmarks" / "bench_shard_scaling.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.SHARD_COUNTS == (1, 2, 4)

    entries = json.loads(BASELINE.read_text())["entries"]
    for shards in module.SHARD_COUNTS:
        key = f"test_bench_shard_scaling[{shards}]"
        assert key in entries, (
            f"shard count {shards} has no baseline entry; re-run "
            f"tools/update_bench_baseline.py"
        )


def _report(name, mean):
    return {"benchmarks": [{"name": name, "stats": {"mean": mean}}]}


def _baseline_with(name, mean):
    tool = _load_tool()
    return {
        "schema": tool.SCHEMA,
        "entries": {
            name: {
                "file": "benchmarks/bench_x.py",
                "stats": {"min": mean, "max": mean, "mean": mean,
                          "stddev": 0.0, "rounds": 5},
            }
        },
    }


def test_compare_timings_passes_within_tolerance_band():
    tool = _load_tool()
    baseline = _baseline_with("bench_a", 0.010)
    assert tool.compare_timings(baseline, _report("bench_a", 0.012), 5.0) == []
    # right at the band edge is still fine; strictly beyond it is not
    assert tool.compare_timings(baseline, _report("bench_a", 0.050), 5.0) == []
    problems = tool.compare_timings(baseline, _report("bench_a", 0.051), 5.0)
    assert len(problems) == 1 and "exceeds baseline" in problems[0]


def test_compare_timings_reports_missing_baseline_entry():
    tool = _load_tool()
    baseline = _baseline_with("bench_a", 0.010)
    problems = tool.compare_timings(baseline, _report("bench_new", 0.001), 5.0)
    assert len(problems) == 1 and "no baseline entry" in problems[0]
    # benches only in the baseline are fine (CI may gate on a subset)
    assert tool.compare_timings(baseline, {"benchmarks": []}, 5.0) == []


def test_compare_timings_rejects_degenerate_tolerance():
    import pytest

    tool = _load_tool()
    with pytest.raises(ValueError, match="tolerance"):
        tool.compare_timings({"entries": {}}, {"benchmarks": []}, 1.0)


def test_check_cli_gates_on_report(tmp_path, capsys):
    """``--check --report`` wires compare_timings into the exit code."""
    tool = _load_tool()
    slow = {
        "benchmarks": [
            {"name": "test_bench_kernel_event_throughput",
             "stats": {"mean": 1e9}}
        ]
    }
    report = tmp_path / "report.json"
    report.write_text(json.dumps(slow))
    assert tool.main(["--check", "--report", str(report)]) == 1
    assert "exceeds baseline" in capsys.readouterr().err

    entries = json.loads(BASELINE.read_text())["entries"]
    name = "test_bench_kernel_event_throughput"
    ok = {"benchmarks": [
        {"name": name, "stats": {"mean": entries[name]["stats"]["mean"]}}
    ]}
    report.write_text(json.dumps(ok))
    assert tool.main(["--check", "--report", str(report)]) == 0


def test_merge_preserves_unrelated_entries():
    tool = _load_tool()
    baseline = {
        "schema": tool.SCHEMA,
        "entries": {"old_bench": {"file": "x.py", "stats": {}}},
    }
    collected = {
        "machine": "m",
        "datetime": "d",
        "entries": {"new_bench": {"file": "y.py", "stats": {}}},
    }
    merged = tool.merge(baseline, collected)
    assert set(merged["entries"]) == {"old_bench", "new_bench"}
    assert merged["schema"] == tool.SCHEMA


# ----------------------------------------------------------------------
# Trajectory: the persisted speed history across collections
# ----------------------------------------------------------------------
def test_baseline_trajectory_is_present_and_well_formed():
    """The committed file carries the speed history the ROADMAP
    promises: at least one point per collection, and the latest point's
    means match the latest entries (same collection run)."""
    baseline = json.loads(BASELINE.read_text())
    trajectory = baseline["trajectory"]
    assert isinstance(trajectory, list) and trajectory
    for point in trajectory:
        assert isinstance(point["datetime"], str)
        assert isinstance(point["means"], dict) and point["means"]
        for mean in point["means"].values():
            assert isinstance(mean, (int, float)) and mean == mean
    latest = trajectory[-1]
    for name, entry in baseline["entries"].items():
        assert latest["means"][name] == entry["stats"]["mean"]


def test_baseline_trajectory_records_kernel_speedup():
    """PR 9's kernel fast path: the latest trajectory point's kernel
    means must not regress past the first (pre-optimization) point.

    Compared with slack (2x) because both points were measured on
    whatever machine collected them — this pins 'the history shows no
    order-of-magnitude regression', not exact timings."""
    trajectory = json.loads(BASELINE.read_text())["trajectory"]
    assert len(trajectory) >= 2, "expected pre- and post-optimization points"
    first, latest = trajectory[0]["means"], trajectory[-1]["means"]
    for name in (
        "test_bench_kernel_event_throughput",
        "test_bench_packet_forwarding_throughput",
    ):
        assert latest[name] <= first[name] * 2.0, (
            f"{name}: trajectory shows a regression "
            f"({first[name]:.4f}s -> {latest[name]:.4f}s)"
        )


def test_check_flags_missing_or_malformed_trajectory():
    tool = _load_tool()
    baseline = json.loads(BASELINE.read_text())
    no_trajectory = {k: v for k, v in baseline.items() if k != "trajectory"}
    assert any("trajectory" in p for p in tool.check(no_trajectory))
    malformed = dict(baseline)
    malformed["trajectory"] = [{"datetime": "d", "means": {}}]
    assert any("means" in p for p in tool.check(malformed))
    bad_mean = dict(baseline)
    bad_mean["trajectory"] = [
        {"datetime": "d", "means": {"bench": float("nan")}}
    ]
    assert any("non-numeric" in p for p in tool.check(bad_mean))


def test_merge_appends_trajectory_and_migrates_schema1():
    """Merging over a pre-trajectory (schema 1) baseline keeps the old
    stats as the history's first point instead of dropping them."""
    tool = _load_tool()
    old = {
        "schema": 1,
        "datetime": "2026-01-01T00:00:00",
        "machine": "x86_64",
        "entries": {
            "bench_a": {
                "file": "x.py",
                "stats": {"min": 0.9, "max": 1.1, "mean": 1.0,
                          "stddev": 0.01, "rounds": 3},
            }
        },
    }
    collected = {
        "machine": "x86_64",
        "datetime": "2026-02-01T00:00:00",
        "entries": {
            "bench_a": {
                "file": "x.py",
                "stats": {"min": 0.4, "max": 0.6, "mean": 0.5,
                          "stddev": 0.01, "rounds": 3},
            }
        },
    }
    merged = tool.merge(old, collected, label="speedup")
    assert merged["schema"] == tool.SCHEMA
    assert [p["means"]["bench_a"] for p in merged["trajectory"]] == [1.0, 0.5]
    assert merged["trajectory"][0]["label"] == "pre-trajectory baseline"
    assert merged["trajectory"][1]["label"] == "speedup"
    # A second merge appends (no re-migration).
    again = tool.merge(merged, collected, label="again")
    assert len(again["trajectory"]) == 3
