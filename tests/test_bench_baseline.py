"""Shape tests for the committed benchmark baseline (S3).

``benchmarks/BENCH_kernel.json`` is collected by
``tools/update_bench_baseline.py`` from the kernel-throughput and
per-stack scenario benches.  Timings are machine-dependent and NOT
pinned; these tests pin the *shape* — the file parses, carries the
schema, passes the tool's own ``--check`` validation, and covers every
kernel bench plus one per-stack entry for every registered protocol
stack (so registering a new stack without re-collecting the baseline
fails here, eagerly).
"""

import importlib.util
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_kernel.json"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "update_bench_baseline", REPO / "tools" / "update_bench_baseline.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_baseline_exists_and_passes_shape_check():
    tool = _load_tool()
    baseline = json.loads(BASELINE.read_text())
    assert tool.check(baseline) == []


def test_baseline_covers_kernel_and_every_stack():
    from repro.stacks import stack_names

    entries = json.loads(BASELINE.read_text())["entries"]
    for name in (
        "test_bench_kernel_event_throughput",
        "test_bench_kernel_callback_throughput",
        "test_bench_packet_forwarding_throughput",
    ):
        assert name in entries, f"kernel bench {name} missing from baseline"
    for stack in stack_names():
        key = f"test_bench_scenario_stack_smoke[{stack}]"
        assert key in entries, (
            f"stack {stack!r} has no baseline entry; re-run "
            f"tools/update_bench_baseline.py"
        )


def test_merge_preserves_unrelated_entries():
    tool = _load_tool()
    baseline = {
        "schema": tool.SCHEMA,
        "entries": {"old_bench": {"file": "x.py", "stats": {}}},
    }
    collected = {
        "machine": "m",
        "datetime": "d",
        "entries": {"new_bench": {"file": "y.py", "stats": {}}},
    }
    merged = tool.merge(baseline, collected)
    assert set(merged["entries"]) == {"old_bench", "new_bench"}
    assert merged["schema"] == tool.SCHEMA
