"""Docs-debt guard: the public API must stay documented.

Walks ``__all__`` of the scenario subsystem, the execution engine, the
campaign runner, the policy engine, the hybrid fluid layer, the shard
engine, and the radio and mobility packages (their public APIs are the package
``__init__`` exports plus the shared-channel module) and asserts every
exported callable/class (and every public method defined on an
exported class) carries a real docstring, and that each module states
its determinism contract.  A `pydocstyle`-equivalent check without the
dependency: new exports can't land undocumented.
"""

import inspect

import pytest

import repro.campaign
import repro.campaign.diff
import repro.campaign.manifest
import repro.campaign.queue
import repro.campaign.store
import repro.experiments.exec
import repro.fluid
import repro.fluid.config
import repro.fluid.driver
import repro.fluid.model
import repro.mobility
import repro.policy
import repro.policy.config
import repro.policy.decider
import repro.policy.trace
import repro.policy.types
import repro.radio
import repro.radio.channel
import repro.scenarios.builder
import repro.scenarios.catalog
import repro.scenarios.compare
import repro.scenarios.spec
import repro.scenarios.sweep
import repro.shard
import repro.shard.boundary
import repro.shard.driver
import repro.shard.plan
import repro.shard.runner
import repro.shard.transport
import repro.stacks
import repro.stacks.base
import repro.stacks.cellularip
import repro.stacks.flat
import repro.stacks.mobileip
import repro.stacks.multitier
import repro.stacks.population
import repro.stacks.registry

MODULES = [
    repro.scenarios.spec,
    repro.scenarios.builder,
    repro.scenarios.catalog,
    repro.scenarios.compare,
    repro.scenarios.sweep,
    repro.experiments.exec,
    repro.fluid,
    repro.fluid.config,
    repro.fluid.driver,
    repro.fluid.model,
    repro.campaign,
    repro.campaign.manifest,
    repro.campaign.queue,
    repro.campaign.store,
    repro.campaign.diff,
    repro.policy,
    repro.policy.config,
    repro.policy.decider,
    repro.policy.trace,
    repro.policy.types,
    repro.radio,
    repro.radio.channel,
    repro.shard,
    repro.shard.plan,
    repro.shard.boundary,
    repro.shard.driver,
    repro.shard.transport,
    repro.shard.runner,
    repro.mobility,
    repro.stacks,
    repro.stacks.base,
    repro.stacks.registry,
    repro.stacks.population,
    repro.stacks.flat,
    repro.stacks.multitier,
    repro.stacks.cellularip,
    repro.stacks.mobileip,
]

MIN_DOCSTRING = 20  # characters; rules out placeholder one-worders


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring_states_determinism(module):
    assert module.__doc__, f"{module.__name__} has no module docstring"
    assert "determin" in module.__doc__.lower(), (
        f"{module.__name__} docstring must state its determinism contract"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_exports_are_documented(module):
    assert module.__all__, f"{module.__name__} must declare __all__"
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            # Data and type-alias exports (MOBILITY_MODELS, Job, ...)
            # are documented with #: comments instead.
            continue
        doc = inspect.getdoc(obj) or ""
        if len(doc) < MIN_DOCSTRING:
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_") or not inspect.isfunction(member):
                    continue
                method_doc = inspect.getdoc(member) or ""
                if len(method_doc) < MIN_DOCSTRING:
                    undocumented.append(f"{name}.{attr}")
    assert not undocumented, (
        f"{module.__name__} exports lacking docstrings "
        f"(>= {MIN_DOCSTRING} chars): {', '.join(undocumented)}"
    )
