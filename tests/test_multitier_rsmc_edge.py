"""Edge-case tests for the RSMC: buffering limits, departure
forwarding, authentication, guard timers and paging."""

import pytest

from repro.mobileip import messages as mip_messages
from repro.multitier.architecture import MultiTierWorld
from repro.net import Packet, ip
from repro.traffic import CBRSource, FlowSink


def test_buffer_overflow_counts_and_drops():
    world = MultiTierWorld(domain_kwargs={"buffer_size": 3, "buffer_guard_time": 5.0})
    sim = world.sim
    rsmc = world.domain1.rsmc
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    sim.run(until=1.0)

    # Force buffering and pour in more packets than the buffer holds.
    rsmc._start_buffering(mn.home_address)
    for seq in range(10):
        world.cn.send_to_mobile(mn.home_address, seq=seq)
    sim.run(until=2.0)
    assert rsmc.buffered_packets == 3
    assert rsmc.buffer_overflows == 7


def test_buffer_guard_abandons_stuck_handoff():
    world = MultiTierWorld(domain_kwargs={"buffer_guard_time": 0.5})
    sim = world.sim
    rsmc = world.domain1.rsmc
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    sim.run(until=1.0)

    rsmc._start_buffering(mn.home_address)
    world.cn.send_to_mobile(mn.home_address, seq=0)
    sim.run(until=1.2)
    assert rsmc.buffered_packets == 1
    # No Update Location Message ever arrives: the guard discards.
    sim.run(until=3.0)
    assert rsmc.buffer_overflows >= 1
    assert mn.home_address not in rsmc._buffers


def test_departure_forwarding_to_new_domain():
    """After an inter-domain move, packets held at the old RSMC are
    tunneled to the new one once the HA reports the new binding."""
    world = MultiTierWorld(second_domain=True, home_delay=0.05)
    sim = world.sim
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["F"])
    sim.run(until=1.0)

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))

    def mover():
        yield sim.timeout(0.5)
        ok = yield from mn.perform_handoff(world.domain2["G"])
        assert ok

    # Stream across the move.
    for seq in range(40):
        sim.schedule(seq * 0.02, world.cn.send_to_mobile, mn.home_address, 500)
    sim.process(mover())
    sim.run(until=8.0)
    assert world.domain1.rsmc.forwarded_to_new_domain > 0
    assert mn.data_received == 40  # nothing lost across domains


def test_forward_grace_expires():
    world = MultiTierWorld(second_domain=True, domain_kwargs={"forward_grace": 0.5})
    sim = world.sim
    rsmc1 = world.domain1.rsmc
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["F"])
    sim.run(until=1.0)

    def mover():
        yield sim.timeout(0.1)
        yield from mn.perform_handoff(world.domain2["G"])

    sim.process(mover())
    sim.run(until=3.0)
    # Pointer installed during the move...
    assert mn.home_address in rsmc1._forward_to
    # ...but a late packet after the grace period is not forwarded.
    before = rsmc1.forwarded_to_new_domain
    # Inject directly at the old RSMC (emulating a stale route).
    rsmc1._route_mobile_packet(
        Packet(src=world.cn.address, dst=mn.home_address, size=100), None
    )
    sim.run(until=4.0)
    assert rsmc1.forwarded_to_new_domain == before
    assert mn.home_address not in rsmc1._forward_to


def test_authentication_counted_once_per_domain():
    world = MultiTierWorld()
    sim = world.sim
    d1 = world.domain1
    mn = world.add_mobile("mn")
    assert mn.initial_attach(d1["B"])
    sim.run(until=1.0)
    assert d1.rsmc.authentications == 1

    # Intra-domain handoffs re-use the authentication.
    def mover():
        yield from mn.perform_handoff(d1["C"])

    sim.process(mover())
    sim.run(until=3.0)
    assert d1.rsmc.authentications == 1


def test_auth_delay_defers_first_binding():
    world = MultiTierWorld(domain_kwargs={"auth_delay": 0.5})
    sim = world.sim
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    sim.run(until=0.3)
    # Still inside the auth window: HA has no binding yet.
    assert world.ha.lookup_binding(mn.home_address) is None
    sim.run(until=2.0)
    assert world.ha.lookup_binding(mn.home_address) is not None


def test_proxy_registration_uses_timestamp_identifications():
    """Two consecutive inter-domain moves must both be accepted by the
    HA (identifications strictly increase across different RSMCs)."""
    world = MultiTierWorld(second_domain=True)
    sim = world.sim
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["F"])
    sim.run(until=1.0)

    def mover():
        ok = yield from mn.perform_handoff(world.domain2["G"])
        assert ok
        yield sim.timeout(1.0)
        ok = yield from mn.perform_handoff(world.domain1["F"])
        assert ok

    sim.process(mover())
    sim.run(until=6.0)
    binding = world.ha.lookup_binding(mn.home_address)
    assert binding is not None
    assert binding.care_of_address == world.domain1.rsmc.address
    assert world.ha.registrations_denied == 0


def test_stale_cn_notify_ignored():
    from repro.multitier import messages as mt_messages
    from repro.multitier.correspondent import CorrespondentNode
    from repro.sim import Simulator

    sim = Simulator()
    cn = CorrespondentNode(sim, "cn", ip("10.0.0.1"))
    fresh = mt_messages.RSMCBindingNotify(
        mobile_address=ip("10.99.0.1"), rsmc_address=ip("10.0.0.9"), sequence=100
    )
    stale = mt_messages.RSMCBindingNotify(
        mobile_address=ip("10.99.0.1"), rsmc_address=ip("10.0.0.8"), sequence=50
    )
    for notify in (fresh, stale):
        cn.receive(
            Packet(
                src=notify.rsmc_address, dst=cn.address, size=44,
                protocol=mt_messages.BINDING_NOTIFY, payload=notify,
            )
        )
    assert cn.bindings[ip("10.99.0.1")] == ip("10.0.0.9")
    assert cn.notifications_received == 1


def test_paged_packet_not_reflooded():
    """A paging-broadcast copy that finds nobody must die at the leaves,
    not bounce back up and re-flood."""
    world = MultiTierWorld()
    sim = world.sim
    rsmc = world.domain1.rsmc
    ghost = ip("10.99.0.99")
    world.realm.register(ghost)
    # Inject at the domain root (as if tunneled in): triggers the flood.
    rsmc.receive(Packet(src=world.cn.address, dst=ghost, size=300, seq=0))
    sim.run(until=2.0)
    total_drops = world.domain1.domain.total_downlink_drops()
    # One flood, one drop per leaf that had no record; no storm.
    assert 0 < total_drops <= len(world.domain1.domain.base_stations)
    assert rsmc.dropped_no_record <= 1


def test_cn_binding_follows_mn_across_domains():
    world = MultiTierWorld(second_domain=True)
    sim = world.sim
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["F"])
    sim.run(until=1.0)
    world.cn.send_to_mobile(mn.home_address, seq=0)
    sim.run(until=2.0)

    def mover():
        # Intra-domain first (CN learns RSMC1), then inter-domain.
        yield from mn.perform_handoff(world.domain1["E"])
        yield sim.timeout(1.0)
        yield from mn.perform_handoff(world.domain2["G"])

    sim.process(mover())
    sim.run(until=8.0)
    world.cn.send_to_mobile(mn.home_address, seq=1)
    sim.run(until=10.0)
    assert world.cn.bindings[mn.home_address] == world.domain2.rsmc.address
    assert mn.data_received == 2
