"""Pico-tier tests: the in-building level of the paper's Fig 2.1
hierarchy, managed like a micro cell."""

import pytest

from repro.mobility import Stationary
from repro.multitier.architecture import WORLD_BOUNDS, MultiTierWorld
from repro.radio.cells import Tier
from repro.radio.geometry import Point


def make_world_with_pico():
    world = MultiTierWorld()
    # An office building inside micro cell B's coverage.
    pico = world.add_pico("B", "office", Point(-2700, 50), radius=60.0, channels=4)
    return world, pico


def test_pico_station_has_micro_table_only():
    world, pico = make_world_with_pico()
    assert pico.tier is Tier.PICO
    assert pico.tables.macro_table is None


def test_pico_attachment_and_data_path():
    world, pico = make_world_with_pico()
    sim = world.sim
    mn = world.add_mobile("worker")
    assert mn.initial_attach(pico)
    sim.run(until=1.0)

    # Location records climb office -> B -> A -> R1 -> R3 -> RSMC.
    d1 = world.domain1
    assert pico.tables.micro_table.peek(mn.home_address).is_direct
    assert d1["B"].tables.micro_table.peek(mn.home_address).via is pico
    assert d1.rsmc.tables.micro_table.peek(mn.home_address) is not None

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))
    world.cn.send_to_mobile(mn.home_address, seq=7)
    sim.run(until=2.0)
    assert got == [7]


def test_pico_to_micro_handoff():
    world, pico = make_world_with_pico()
    sim = world.sim
    d1 = world.domain1
    mn = world.add_mobile("worker")
    assert mn.initial_attach(pico)
    sim.run(until=1.0)

    done = []

    def leave_building():
        ok = yield from mn.perform_handoff(d1["B"])
        done.append(ok)

    sim.process(leave_building())
    sim.run(until=3.0)
    assert done == [True]
    assert mn.serving_bs is d1["B"]
    assert pico.tables.micro_table.peek(mn.home_address) is None


def test_controller_high_demand_user_picks_pico():
    world, pico = make_world_with_pico()
    mn = world.add_mobile("videocaller", bandwidth_demand=1e6)
    world.add_controller(
        mn, Stationary(Point(-2700, 50), WORLD_BOUNDS)
    )
    world.sim.run(until=5.0)
    assert mn.serving_bs is pico


def test_controller_low_demand_user_picks_micro_over_pico():
    world, pico = make_world_with_pico()
    mn = world.add_mobile("idler", bandwidth_demand=0.0)
    world.add_controller(mn, Stationary(Point(-2700, 50), WORLD_BOUNDS))
    world.sim.run(until=5.0)
    assert mn.serving_bs is world.domain1["B"]


def test_pico_guard_channel_admits_handoff_only():
    world, pico = make_world_with_pico()
    # New calls stop at capacity - guard = 3...
    for index in range(3):
        filler = world.add_mobile(f"filler{index}", bandwidth_demand=1e6)
        assert filler.initial_attach(pico)
    blocked = world.add_mobile("blocked", bandwidth_demand=1e6)
    assert not blocked.initial_attach(pico)
    # ...but a handoff may still take the guard channel.
    mover = world.add_mobile("mover", bandwidth_demand=1e6)
    assert mover.initial_attach(world.domain1["B"])
    world.sim.run(until=0.5)
    done = []

    def enter_building():
        ok = yield from mover.perform_handoff(pico)
        done.append(ok)

    world.sim.process(enter_building())
    world.sim.run(until=2.0)
    assert done == [True]


def test_pico_completely_full_overflows_to_micro():
    world, pico = make_world_with_pico()
    # Saturate all 4 channels: 3 new calls plus one handoff (guard).
    for index in range(3):
        filler = world.add_mobile(f"filler{index}", bandwidth_demand=1e6)
        assert filler.initial_attach(pico)
    guard_filler = world.add_mobile("guard_filler", bandwidth_demand=1e6)
    assert guard_filler.initial_attach(world.domain1["B"])

    def fill_guard():
        ok = yield from guard_filler.perform_handoff(pico)
        assert ok

    world.sim.process(fill_guard())
    world.sim.run(until=1.0)
    assert pico.channels.free == 0

    overflow = world.add_mobile("late", bandwidth_demand=1e6)
    world.add_controller(overflow, Stationary(Point(-2700, 50), WORLD_BOUNDS))
    world.sim.run(until=6.0)
    # Pico is completely full; the controller fell through to micro B
    # and stayed there (handoff attempts into the pico are rejected).
    assert overflow.serving_bs is world.domain1["B"]
    assert overflow.handoffs_rejected >= 1
