"""Tests for the Mobile IP substrate: registration, tunnelling, handoff.

The canonical topology (paper Fig 2.2): a correspondent node (CN), a
home agent (HA) on the home network, and two foreign agents (FA1, FA2)
reachable across a wide-area backbone.
"""

import pytest

from repro.mobileip import (
    ForeignAgent,
    HomeAgent,
    MobileIPNode,
    install_home_prefix_routes,
    messages,
)
from repro.net import Network, Packet, ip
from repro.sim import Simulator


def build_mobileip_world(backbone_delay=0.010):
    """CN -- core -- HA(home 10.99.0.0/16); core -- FA1, core -- FA2."""
    sim = Simulator()
    network = Network(sim)
    core = network.router("core")
    cn = network.host("cn")
    ha = HomeAgent(sim, "ha", network.allocator.allocate(), "10.99.0.0/16")
    fa1 = ForeignAgent(sim, "fa1", network.allocator.allocate())
    fa2 = ForeignAgent(sim, "fa2", network.allocator.allocate())
    for agent in (ha, fa1, fa2):
        network.add(agent)
    network.connect(cn, core, delay=0.002)
    network.connect(ha, core, delay=backbone_delay)
    network.connect(fa1, core, delay=backbone_delay)
    network.connect(fa2, core, delay=backbone_delay)
    network.install_routes()
    install_home_prefix_routes(network, ha)

    mn = MobileIPNode(
        sim,
        "mn",
        home_address="10.99.0.5",
        home_agent_address=ha.address,
    )
    return sim, network, cn, core, ha, fa1, fa2, mn


def test_registration_completes_after_attach():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=5.0)
    assert mn.is_registered
    assert mn.registered_agent == fa1.address
    assert ha.lookup_binding(mn.home_address).care_of_address == fa1.address
    assert mn.home_address in fa1.visitors


def test_registration_latency_recorded():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=5.0)
    assert len(mn.registration_latencies) == 1
    # Wireless up + FA->HA + HA->FA + wireless down, each >= 10ms backbone.
    assert 0.02 < mn.registration_latencies[0] < 0.1


def test_registration_latency_scales_with_backbone_delay():
    def latency(delay):
        sim, _n, _cn, _core, _ha, fa1, _fa2, mn = build_mobileip_world(delay)
        fa1.attach_mobile(mn)
        sim.run(until=5.0)
        return mn.registration_latencies[0]

    assert latency(0.050) > latency(0.005)


def test_cn_packets_tunneled_to_visiting_mn():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=2.0)

    received = []
    mn.on_protocol("data", lambda packet, link: received.append(packet))
    cn_sends = Packet(
        src=cn.address, dst=mn.home_address, size=1000, created_at=sim.now
    )
    core.receive(cn_sends)
    sim.run(until=4.0)
    assert len(received) == 1
    assert ha.tunneled_count == 1
    assert fa1.delivered_to_visitors == 1


def test_packets_before_registration_are_dropped_at_ha():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    # MN attached nowhere; CN transmits immediately.
    core.receive(Packet(src=cn.address, dst=mn.home_address, size=1000))
    sim.run(until=1.0)
    assert ha.dropped_no_binding == 1


def test_handoff_between_foreign_agents_updates_binding():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    assert ha.lookup_binding(mn.home_address).care_of_address == fa1.address

    fa1.detach_mobile(mn)
    fa2.attach_mobile(mn)
    sim.run(until=6.0)
    assert mn.registered_agent == fa2.address
    assert ha.lookup_binding(mn.home_address).care_of_address == fa2.address


def test_packets_in_flight_during_handoff_are_lost():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)

    received = []
    mn.on_protocol("data", lambda packet, link: received.append(packet))

    # Detach and immediately stream packets before re-registration completes.
    fa1.detach_mobile(mn)
    fa2.attach_mobile(mn)
    for _ in range(3):
        core.receive(Packet(src=cn.address, dst=mn.home_address, size=500))
    sim.run(until=10.0)
    # All three raced the registration: tunneled to FA1, which no longer
    # knows the visitor.
    assert fa1.dropped_unknown_visitor == 3
    assert received == []


def test_stale_registration_replay_denied():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    # Replay an old identification directly at the HA.
    replay = messages.RegistrationRequest(
        home_address=mn.home_address,
        home_agent=ha.address,
        care_of_address=fa2.address,
        lifetime=60.0,
        identification=1,  # already used
    )
    ha.receive(
        Packet(
            src=fa2.address,
            dst=ha.address,
            size=messages.REGISTRATION_REQUEST_BYTES,
            protocol=messages.REGISTRATION_REQUEST,
            payload=replay,
        )
    )
    sim.run(until=4.0)
    assert ha.registrations_denied >= 1
    # Binding unchanged.
    assert ha.lookup_binding(mn.home_address).care_of_address == fa1.address


def test_registration_for_foreign_home_agent_denied():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    bogus = messages.RegistrationRequest(
        home_address=ip("10.99.0.77"),
        home_agent=ip("1.2.3.4"),
        care_of_address=fa1.address,
        lifetime=60.0,
        identification=1,
    )
    ha.receive(
        Packet(
            src=fa1.address,
            dst=ha.address,
            size=52,
            protocol=messages.REGISTRATION_REQUEST,
            payload=bogus,
        )
    )
    sim.run(until=1.0)
    assert ha.registrations_denied == 1


def test_binding_expires_after_lifetime():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    mn.registration_lifetime = 5.0
    fa1.attach_mobile(mn)
    sim.run(until=2.0)
    assert ha.lookup_binding(mn.home_address) is not None
    # Detach so renewal advertisements stop reaching the MN.
    fa1.detach_mobile(mn)
    sim.run(until=20.0)
    assert ha.lookup_binding(mn.home_address) is None


def test_mn_to_cn_traffic_routes_directly_not_through_ha():
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    received = []
    cn.on_protocol("data", lambda packet, link: received.append(packet))
    mn.originate(
        Packet(src=mn.home_address, dst=cn.address, size=800, created_at=sim.now)
    )
    ha_forwarded_before = ha.forwarded_count
    sim.run(until=5.0)
    assert len(received) == 1
    # Triangle routing is one-directional: uplink bypasses the HA.
    assert ha.forwarded_count == ha_forwarded_before


def test_triangle_routing_path_stretch():
    """CN->MN goes via the HA (longer); MN->CN is direct (shorter)."""
    sim, network, cn, core, ha, fa1, fa2, mn = build_mobileip_world(
        backbone_delay=0.020
    )
    fa1.attach_mobile(mn)
    sim.run(until=3.0)

    downlink_times = []
    uplink_times = []
    mn.on_protocol("data", lambda packet, link: downlink_times.append(sim.now - packet.created_at))
    cn.on_protocol("data", lambda packet, link: uplink_times.append(sim.now - packet.created_at))

    core.receive(Packet(src=cn.address, dst=mn.home_address, size=1000, created_at=sim.now))
    mn.originate(Packet(src=mn.home_address, dst=cn.address, size=1000, created_at=sim.now))
    sim.run(until=6.0)
    assert len(downlink_times) == 1 and len(uplink_times) == 1
    # Downlink (CN->core->HA->core->FA->MN) strictly longer than uplink.
    assert downlink_times[0] > uplink_times[0]
