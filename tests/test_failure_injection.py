"""Failure injection: lossy radio links, wired link failures, and the
protocol machinery that recovers (retransmission, soft-state expiry,
handoff timeout)."""

import pytest

from repro.cellularip import CIPBaseStation, CIPDomain, CIPGateway, CIPMobileHost
from repro.mobileip import (
    ForeignAgent,
    HomeAgent,
    MobileIPNode,
    install_home_prefix_routes,
)
from repro.multitier.architecture import MultiTierWorld
from repro.net import Network, Packet, ip
from repro.sim import Simulator


def test_mobileip_registration_survives_lossy_radio():
    """The registration state machine retransmits with backoff until a
    reply gets through a 40%-loss radio link."""
    sim = Simulator()
    network = Network(sim)
    core = network.router("core")
    ha = HomeAgent(sim, "ha", network.allocator.allocate(), "10.99.0.0/16")
    fa = ForeignAgent(
        sim, "fa", network.allocator.allocate(),
        advertisement_interval=0.5,
    )
    network.add(ha)
    network.add(fa)
    network.connect(ha, core, delay=0.005)
    network.connect(fa, core, delay=0.005)
    network.install_routes()
    install_home_prefix_routes(network, ha)

    mn = MobileIPNode(
        sim, "mn", home_address="10.99.0.5", home_agent_address=ha.address,
        retransmit_initial=0.5,
    )
    fa.attach_mobile(mn)
    # Corrupt the radio links after attach.
    for link in list(fa.links.values()) + list(mn.links.values()):
        link.loss_rate = 0.4
    sim.run(until=60.0)
    assert mn.is_registered
    assert mn.registration_attempts >= 1
    assert ha.lookup_binding(mn.home_address) is not None


def test_wired_link_failure_blackholes_then_recovers():
    """A failed CIP tree link drops descending packets; once repaired and
    the caches refreshed, traffic resumes."""
    sim = Simulator()
    domain = CIPDomain(sim, route_timeout=2.0, route_update_time=0.5)
    network = Network(sim)
    gw = CIPGateway(sim, "gw", network.allocator.allocate(), domain)
    mid = CIPBaseStation(sim, "mid", network.allocator.allocate(), domain)
    leaf = CIPBaseStation(sim, "leaf", network.allocator.allocate(), domain)
    for node in (gw, mid, leaf):
        network.add(node)
    domain.link(gw, mid)
    domain.link(mid, leaf)

    from repro.net import Router

    internet = Router(sim, "internet", network.allocator.allocate())
    cn = network.host("cn")
    network.add(internet)
    network.connect(cn, internet)
    gw.connect_internet(internet)
    internet.add_route("10.200.0.0/16", gw)
    internet.add_host_route(cn.address, cn)

    mn = CIPMobileHost(sim, "mn", ip("10.200.0.1"), domain)
    mn.attach_to(leaf)
    sim.run(until=1.0)

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))

    def send(seq):
        internet.receive(
            Packet(src=cn.address, dst=mn.address, size=300, seq=seq,
                   created_at=sim.now, flow_id="f")
        )

    send(1)
    sim.run(until=2.0)
    assert got == [1]

    # Fail the gw->mid direction.
    failed = gw.link_to(mid)
    failed.up = False
    send(2)
    sim.run(until=3.0)
    assert got == [1]  # blackholed

    failed.up = True
    sim.run(until=5.0)  # let route updates re-traverse
    send(3)
    sim.run(until=6.0)
    assert got == [1, 3]


def test_handoff_request_times_out_over_dead_radio():
    """A handoff request into a BS whose radio immediately fails must
    time out and leave the mobile on its old station."""
    world = MultiTierWorld(domain_kwargs={"handoff_timeout": 0.3})
    sim = world.sim
    d1 = world.domain1
    mn = world.add_mobile("mn")
    assert mn.initial_attach(d1["F"])
    sim.run(until=1.0)

    target = d1["E"]
    results = []

    def mover():
        # Connect, then kill the new radio before the request gets out.
        target.radio_connect(mn)
        for link in (mn.link_to(target), target.link_to(mn)):
            if link is not None:
                link.up = False
        ok = yield from mn.perform_handoff(target)
        results.append(ok)

    sim.process(mover())
    sim.run(until=3.0)
    assert results == [False]
    assert mn.handoffs_timed_out == 1
    assert mn.serving_bs is d1["F"]


def test_stream_survives_lossy_wireless_with_gaps():
    """Random wireless loss shows up as loss rate, not a crash."""
    world = MultiTierWorld()
    sim = world.sim
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    sim.run(until=1.0)
    # 20% downlink radio loss.
    link = world.domain1["B"].link_to(mn)
    link.loss_rate = 0.2

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))
    for seq in range(100):
        sim.schedule(seq * 0.01, world.cn.send_to_mobile, mn.home_address, 300)
    sim.run(until=5.0)
    assert 50 < mn.data_received < 100
    assert link.stats.dropped_error > 0


def test_buffer_guard_prevents_unbounded_memory():
    """If an accepted handoff never completes, the RSMC buffer is
    bounded by buffer_size and reclaimed by the guard."""
    world = MultiTierWorld(
        domain_kwargs={"buffer_size": 8, "buffer_guard_time": 0.5}
    )
    sim = world.sim
    rsmc = world.domain1.rsmc
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    sim.run(until=1.0)

    rsmc._start_buffering(mn.home_address)
    for seq in range(50):
        sim.schedule(seq * 0.005, world.cn.send_to_mobile, mn.home_address, 300)
    sim.run(until=5.0)
    assert rsmc.buffered_packets <= 8
    assert rsmc.buffer_overflows >= 42
    assert mn.home_address not in rsmc._buffers
