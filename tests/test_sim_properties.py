"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams, Simulator
from repro.sim.monitor import TimeWeightedGauge


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_processed_in_nondecreasing_time_order(delays):
    sim = Simulator()
    seen = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.integers(0, 1000)),
        min_size=1,
        max_size=40,
    )
)
def test_simultaneous_events_preserve_insertion_order(items):
    sim = Simulator()
    seen = []
    for delay, tag in items:
        sim.schedule(delay, seen.append, (delay, tag))
    sim.run()
    # Stable sort by delay must reproduce the processing order exactly.
    assert seen == sorted(items, key=lambda pair: pair[0])


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_named_rng_streams_are_reproducible(seed):
    streams_a = RandomStreams(seed)
    streams_b = RandomStreams(seed)
    assert streams_a.uniform("x") == streams_b.uniform("x")
    assert streams_a.exponential("y", 2.0) == streams_b.exponential("y", 2.0)


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_named_rng_streams_are_independent_of_draw_order(seed):
    streams_a = RandomStreams(seed)
    first_then_second = (streams_a.uniform("one"), streams_a.uniform("two"))
    streams_b = RandomStreams(seed)
    second_then_first = (streams_b.uniform("two"), streams_b.uniform("one"))
    assert first_then_second == (second_then_first[1], second_then_first[0])


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_time_weighted_gauge_average_is_bounded_by_extremes(segments):
    sim = Simulator()
    gauge = TimeWeightedGauge(sim, "queue")
    levels = [0.0]

    def driver(sim, gauge):
        for duration, level in segments:
            yield sim.timeout(duration)
            gauge.set(level)
            levels.append(level)

    sim.process(driver(sim, gauge))
    sim.run()
    average = gauge.time_average()
    assert min(levels) - 1e-9 <= average <= max(levels) + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30))
def test_store_preserves_all_items_fifo(items):
    sim = Simulator()
    from repro.sim import Store

    store = Store(sim)
    received = []

    def producer(sim, store):
        for item in items:
            yield store.put(item)

    def consumer(sim, store):
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert received == list(items)
