"""Unit tests for the conservative spatial sharding layer (repro.shard).

The tier-1 property suite pins the headline contract (shards(1) ==
shards(2), byte-identical, per stack); these tests pin the mechanisms
underneath on small synthetic worlds: the planner's cut rules and
group assignment, the transmit-time boundary announce and its computed
arrival time, the null-message (EOT) bound formula, deterministic
injection ordering of packets and migrations, the migration lookahead
guard, transport error propagation, and the harvest merge.
"""

import math
import multiprocessing
import queue

import pytest

from repro.experiments.exec import RemoteTraceback
from repro.net import Network, Packet
from repro.net.link import link_registry
from repro.shard import (
    BoundaryLink,
    LocalTransport,
    PeerAborted,
    PipeTransport,
    ShardDriver,
    ShardPlan,
    inject_arrival,
    install_boundary_exports,
    make_shard_plan,
    merge_harvests,
    neuter_foreign_parts,
)
from repro.sim import Simulator

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")


# ----------------------------------------------------------------------
# A synthetic built world the planner/boundary helpers can operate on
# ----------------------------------------------------------------------
class _FakeBuilt:
    """Minimal shard-contract shim over a hand-built Network."""

    SHARD_PARTS = ("radio", "cn", "core")

    def __init__(self, sim, network, part_of, spec=None):
        self.sim = sim
        self.network = network
        self._part_of = part_of
        self.spec = spec

    def shard_part(self, node_name):
        return self._part_of.get(node_name, "radio")

    def shard_processes(self, part):
        return []


def _world(cut_delay=0.004, cut_loss=0.0):
    """radio(m, gw) --cut--> core(core) ---> cn(cn), all wired."""
    sim = Simulator()
    network = Network(sim)
    m = network.host("m")
    gw = network.router("gw")
    core = network.router("core")
    cn = network.host("cn")
    network.connect(m, gw, delay=0.001)
    network.connect(gw, core, delay=cut_delay, loss_rate=cut_loss)
    network.connect(core, cn, delay=0.002)
    network.install_routes()
    part_of = {"core": "core", "cn": "cn"}
    return _FakeBuilt(sim, network, part_of), network


# ----------------------------------------------------------------------
# Planner: group assignment and cut rules
# ----------------------------------------------------------------------
def test_plan_peels_radio_into_its_own_group_first():
    built, _network = _world()
    plan = make_shard_plan(built, 3)
    assert plan.groups[0] == ("radio",)
    assert sorted(p for g in plan.groups for p in g) == ["cn", "core", "radio"]
    assert plan.n_groups == 3


def test_plan_single_shard_degenerates_to_one_group():
    built, _network = _world()
    plan = make_shard_plan(built, 1)
    assert plan.n_groups == 1
    assert plan.boundaries == []
    assert plan.channels == {}


def test_plan_caps_groups_at_part_count():
    built, _network = _world()
    plan = make_shard_plan(built, 16)
    assert plan.n_groups == 3


def test_plan_merges_groups_joined_by_zero_delay_link():
    built, _network = _world(cut_delay=0.0)
    plan = make_shard_plan(built, 3)
    # radio--core joined by a zero-lookahead link: those parts merge,
    # leaving only the core--cn cut (both directions).
    radio_group = plan.group_of("radio")
    assert plan.group_of("core") == radio_group
    assert plan.group_of("cn") != radio_group
    assert all(b.delay > 0.0 for b in plan.boundaries)


def test_plan_merges_groups_joined_by_lossy_link():
    built, _network = _world(cut_loss=0.1)
    plan = make_shard_plan(built, 3)
    assert plan.group_of("core") == plan.group_of("radio")


def test_plan_merges_groups_joined_by_shared_channel_link():
    built, network = _world()
    for link in network.links:
        if link.head.name == "gw" and link.tail.name == "core":
            link.shared_channel = object()
    plan = make_shard_plan(built, 3)
    assert plan.group_of("core") == plan.group_of("radio")


def test_plan_channel_lookahead_is_min_cut_delay():
    built, network = _world()
    # Add a second, faster radio->core cut; the channel bound must use it.
    network.connect("m", "core", delay=0.003)
    plan = make_shard_plan(built, 3)
    src = plan.group_of("radio")
    dst = plan.group_of("core")
    assert plan.channels[(src, dst)] == pytest.approx(0.003)
    assert plan.inbound(dst)[src] == pytest.approx(0.003)
    assert plan.outbound(src)[dst] == pytest.approx(0.003)


# ----------------------------------------------------------------------
# Boundary: transmit-time announce, injection, cut-rule guard
# ----------------------------------------------------------------------
def _cut_link(network, head, tail):
    for index, link in enumerate(link_registry(network.sim).links):
        if link.head.name == head and link.tail.name == tail:
            return index, link
    raise AssertionError(f"no {head}->{tail} link")


def test_boundary_export_announces_at_send_time_with_arrival_time():
    built, network = _world(cut_delay=0.004)
    plan = make_shard_plan(built, 3)
    src = plan.group_of("radio")
    announced = []
    hooked = install_boundary_exports(
        built, plan, src, lambda *args: announced.append(args)
    )
    assert hooked >= 1

    link_id, link = _cut_link(network, "gw", "core")
    packet = Packet(
        src=network.nodes["m"].address,
        dst=network.nodes["cn"].address,
        size=1000,
    )
    built.sim.call_later(0.5, link.transmit, packet)
    built.sim.run(until=0.5)  # announce happens AT the send instant
    assert len(announced) == 1
    dst_group, announced_link, announced_packet, t_arrival = announced[0]
    assert dst_group == plan.group_of("core")
    assert announced_link == link_id
    assert announced_packet is packet
    expected = 0.5 + link.serialization_time(packet) + link.delay
    assert t_arrival == pytest.approx(expected)
    # The head side swallows local delivery: stats accrue, no receive.
    built.sim.run()
    assert link.stats.delivered == 1


def test_inject_arrival_replays_receive_and_rejects_the_past():
    built, network = _world()
    link_id, link = _cut_link(network, "gw", "core")
    received = []
    network.nodes["cn"].on_default(
        lambda packet, _link: received.append((built.sim.now, packet))
    )
    packet = Packet(
        src=network.nodes["m"].address,
        dst=network.nodes["cn"].address,
        size=1000,
    )
    inject_arrival(built, link_id, packet, 0.25)
    built.sim.run()
    assert received and received[0][1] is packet
    # Delivered onward over the core->cn hop after the injected arrival.
    assert received[0][0] > 0.25
    with pytest.raises(RuntimeError, match="causality"):
        inject_arrival(built, link_id, packet, built.sim.now - 1.0)


def test_install_boundary_exports_guards_cut_rule_violations():
    built, network = _world()
    link_id, _link = _cut_link(network, "m", "gw")  # delay 0.001, internal
    network.links[0].loss_rate = 0.0  # untouched; violation is hand-made
    plan = ShardPlan(
        groups=(("radio",), ("cn", "core")),
        boundaries=[
            BoundaryLink(link_id=link_id, src_group=0, dst_group=1, delay=0.0)
        ],
    )
    registry_link = link_registry(built.sim).links[link_id]
    registry_link.delay = 0.0  # zero lookahead: must be refused
    with pytest.raises(RuntimeError, match="cut rules"):
        install_boundary_exports(built, plan, 0, lambda *args: None)


def test_neuter_foreign_parts_silences_unowned_processes():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield sim.timeout(0.1)
            ticks.append(sim.now)

    process = sim.process(ticker())

    class Built:
        SHARD_PARTS = ("radio", "cn")

        def shard_processes(self, part):
            return [process] if part == "radio" else []

    assert neuter_foreign_parts(Built(), owned={"cn"}) == 1
    sim.run(until=1.0)
    assert ticks == []  # the generator was swapped before Initialize


# ----------------------------------------------------------------------
# Driver: EOT bounds, injection order, migration lookahead
# ----------------------------------------------------------------------
class _ScriptedEndpoint:
    """Replays scripted inbound messages; records every send."""

    def __init__(self, script):
        self.script = list(script)
        self.sent = []

    def send(self, dst, payload):
        self.sent.append((dst, payload))

    def recv(self):
        return self.script.pop(0)


def _driver(script, spec=None):
    built, _network = _world()
    built.spec = spec
    plan = ShardPlan(
        groups=(("radio",), ("cn", "core")),
        channels={(0, 1): 0.005, (1, 0): 0.005},
    )
    endpoint = _ScriptedEndpoint(script)
    return ShardDriver(built, plan, 0, endpoint), endpoint, built


def test_advance_phase_promises_eot_bounds_and_barriers():
    """The null bound is min(peek, horizon, phase_end) + lookahead, and
    the phase exit sends the final bound plus a phase marker."""
    driver, endpoint, built = _driver(
        script=[(1, ("null", 0.5)), (1, ("null", 2.0)), (1, ("phase",))]
    )
    built.sim.call_later(0.3, lambda: None)  # a pending local event
    driver._advance_phase(1.0)
    nulls = [p[1] for _dst, p in endpoint.sent if p[0] == "null"]
    # Round 1: horizon 0.0 dominates -> 0.0 + 0.005.
    assert nulls[0] == pytest.approx(0.005)
    # Round 2: the 0.3 event was consumed, peek is inf, horizon 0.5
    # dominates phase_end 1.0 -> 0.505.
    assert nulls[1] == pytest.approx(0.505)
    # Exit: bound promises past the barrier -> 1.0 + 0.005, then marker.
    assert nulls[2] == pytest.approx(1.005)
    assert endpoint.sent[-1] == (1, ("phase",))
    assert built.sim.now == pytest.approx(1.0)


def test_driver_injects_packets_before_migrations_at_time_ties():
    driver, endpoint, built = _driver(script=[])
    network = built.network
    link_id, _link = _cut_link(network, "gw", "core")
    order = []
    network.nodes["core"].on_default(
        lambda packet, _link: order.append("pkt")
    )
    driver.on_migrate("m-1", lambda state: order.append(("migrate", state)))
    packet = Packet(
        src=network.nodes["m"].address,
        dst=network.nodes["core"].address,
        size=100,
    )
    # Buffered out of order; the sort must put the packet (rank 0)
    # ahead of the migration (rank 1) at the identical timestamp.
    driver._pending.append((0.5, 1, "m-1", 1, 0, {"speed": 3.0}))
    driver._pending.append((0.5, 0, link_id, 1, 1, packet))
    driver._inject_pending()
    built.sim.run()
    assert order == ["pkt", ("migrate", {"speed": 3.0})]


def test_send_migration_enforces_channel_lookahead():
    driver, endpoint, built = _driver(script=[])
    with pytest.raises(ValueError, match="lookahead"):
        driver.send_migration(1, "m-1", {}, t_effective=0.001)
    driver.send_migration(1, "m-1", {"x": 1}, t_effective=0.005)
    assert endpoint.sent[-1][0] == 1
    kind, t_effective, key, _seq, state = endpoint.sent[-1][1]
    assert (kind, t_effective, key, state) == (
        "migrate", 0.005, "m-1", {"x": 1}
    )


def test_driver_rejects_duplicate_phase_markers():
    driver, _endpoint, _built = _driver(script=[])
    assert driver._consume(1, ("phase",)) is True
    with pytest.raises(RuntimeError, match="out of step"):
        driver._consume(1, ("phase",))


def test_driver_raises_peer_aborted_on_abort_message():
    driver, _endpoint, _built = _driver(script=[])
    with pytest.raises(PeerAborted):
        driver._consume(1, ("abort",))


# ----------------------------------------------------------------------
# Transports: FIFO relay and fail-fast error propagation
# ----------------------------------------------------------------------
def test_local_transport_propagates_root_error_not_the_cascade():
    def body(endpoint, group):
        if group == 0:
            raise ValueError("shard zero exploded")
        endpoint.recv()  # blocks until the abort broadcast arrives
        return {}

    with pytest.raises(ValueError, match="shard zero exploded") as info:
        LocalTransport().run(2, body)
    assert isinstance(info.value.__cause__, RemoteTraceback)


def test_local_transport_returns_harvests_in_group_order():
    def body(endpoint, group):
        if group == 0:
            endpoint.send(1, ("ping", 1))
            endpoint.send(1, ("ping", 2))
            return {"group": 0}
        first = endpoint.recv()
        second = endpoint.recv()
        return {"group": 1, "messages": [first, second]}

    harvests = LocalTransport().run(2, body)
    assert harvests[0] == {"group": 0}
    assert harvests[1] == {
        "group": 1,
        "messages": [(0, ("ping", 1)), (0, ("ping", 2))],
    }


@needs_fork
def test_pipe_transport_relays_fifo_between_children():
    def body(endpoint, group):
        if group == 0:
            for index in range(5):
                endpoint.send(1, ("seq", index))
            return {"group": 0}
        return {"received": [endpoint.recv() for _ in range(5)]}

    harvests = PipeTransport().run(2, body)
    assert harvests[1]["received"] == [
        (0, ("seq", index)) for index in range(5)
    ]


@needs_fork
def test_pipe_transport_fail_fast_reraises_original_exception():
    def body(endpoint, group):
        if group == 0:
            raise ValueError("child zero exploded")
        endpoint.recv()  # never satisfied; the parent terminates us
        return {}

    with pytest.raises(ValueError, match="child zero exploded") as info:
        PipeTransport().run(2, body)
    assert isinstance(info.value.__cause__, RemoteTraceback)


# ----------------------------------------------------------------------
# Merge and runner entry point
# ----------------------------------------------------------------------
def test_merge_harvests_sums_hops_and_events_unions_sections():
    merged, events = merge_harvests([
        {"hops": {"data": 3, "reg": 1}, "_events": 10, "sinks": [1, 2]},
        {"hops": {"data": 4}, "_events": 5, "packets_sent": [7]},
    ])
    assert merged["hops"] == {"data": 7, "reg": 1}
    assert merged["sinks"] == [1, 2]
    assert merged["packets_sent"] == [7]
    assert "_events" not in merged
    assert events == 15


def test_run_sharded_rejects_nonpositive_shard_count():
    from repro.scenarios import get_scenario
    from repro.shard import run_scenario_spec_sharded

    with pytest.raises(ValueError, match="at least 1"):
        run_scenario_spec_sharded(get_scenario("sparse-rural").smoke(), 1, 0)


def test_run_sharded_degrades_to_serial_without_fork(monkeypatch, capsys):
    """Fork-less platforms warn once per process and run serially."""
    from repro.scenarios import get_scenario, run_scenario_spec
    from repro.shard import runner

    spec = get_scenario("commuter-corridor").smoke()
    monkeypatch.setattr(
        runner.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )
    monkeypatch.setattr(runner, "_warned_degrade", False)
    first = runner.run_scenario_spec_sharded(spec, 1, 2)
    second = runner.run_scenario_spec_sharded(spec, 1, 2)
    err = capsys.readouterr().err
    assert err.count("lacks the 'fork' start method") == 1
    assert first == second == run_scenario_spec(spec, 1)


def test_base_stack_adapter_refuses_harvest_metrics():
    from repro.stacks.base import StackAdapter

    class Bare(StackAdapter):
        name = "bare"

        def build(self, spec, seed):  # pragma: no cover - not called
            raise AssertionError

    with pytest.raises(NotImplementedError, match="sharded"):
        Bare().harvest_metrics(None, {})
