"""Tests for the durable campaign runner (`repro.campaign`).

Pins the campaign layer's load-bearing guarantees:

* manifest expansion is deterministic, unique and round-trip exact;
  duplicate grid cells and unknown names fail eagerly;
* completion records round-trip byte-exactly and every integrity gate
  fires with the problem named: stray records, fingerprint drift
  between manifest and catalog, corrupted or duplicated store entries,
  merging an incomplete campaign;
* ``run_campaign`` resumes by skipping completed items, re-runs only
  the remainder, and the merged ``results.json`` is byte-identical to
  an uninterrupted run's — serial and ``--jobs 2`` (the SIGKILL
  variants live in ``tests/test_campaign_crash.py``);
* store re-aggregation equals a live replication of the same grid;
* the CLI verbs (``new``/``run``/``resume``/``status``/``diff``) wire
  through with the documented exit codes (2 campaign error, 3 strict
  regression).
"""

import json
import multiprocessing

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    WorkItem,
    build_manifest,
    load_store,
    merge_store,
    run_campaign,
    spec_fingerprint,
    store_replications,
    store_stack_comparisons,
)
from repro.campaign.manifest import CampaignManifest
from repro.cli import main
from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.experiments.runner import replicate
from repro.scenarios import (
    compare_scenario_stacks,
    format_stack_comparison,
    get_scenario,
    run_scenario_spec,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

SCENARIO = "sparse-rural"  # the fastest smoke scenario in the catalog


def _campaign(tmp_path, sub="camp", **kwargs):
    kwargs.setdefault("scenarios", [SCENARIO])
    kwargs.setdefault("smoke", True)
    kwargs.setdefault("name", "testcamp")
    return Campaign.create(tmp_path / sub, **kwargs)


# ----------------------------------------------------------------------
# Manifest expansion
# ----------------------------------------------------------------------
def test_build_manifest_is_deterministic_and_unique():
    knobs = dict(
        scenarios=["sparse-rural", "campus-dense"],
        sweeps=["sparse-rural/population"],
        stacks=["multitier", "cellularip"],
        seeds=[1, 2],
        smoke=True,
    )
    a = build_manifest("grid", **knobs)
    b = build_manifest("grid", **knobs)
    assert a == b
    assert a.digest() == b.digest()
    ids = a.item_ids()
    assert len(ids) == len(set(ids))
    # scenario-major then sweep-major expansion, 2 scenarios x 2 stacks
    # x 2 seeds + 1 sweep x 2 stacks x points x 2 seeds
    assert ids[0] == "sparse-rural--multitier--s1"
    assert any(item.sweep == "sparse-rural/population" for item in a.items)


def test_build_manifest_rejects_duplicates_and_empties():
    with pytest.raises(CampaignError, match="duplicate work item"):
        build_manifest("dup", scenarios=[SCENARIO, SCENARIO], smoke=True)
    with pytest.raises(CampaignError, match="at least one"):
        build_manifest("empty")
    with pytest.raises(KeyError, match="registered"):
        build_manifest("bad", scenarios=[SCENARIO], stacks=["hawaii"])


def test_manifest_json_round_trip_is_exact():
    manifest = build_manifest(
        "rt", scenarios=[SCENARIO], sweeps=["sparse-rural/population"],
        stacks=["multitier"], seeds=[3, 5], smoke=True,
    )
    rebuilt = CampaignManifest.from_json(
        json.loads(json.dumps(manifest.to_json()))
    )
    assert rebuilt == manifest
    assert rebuilt.digest() == manifest.digest()
    rebuilt.verify_derivable()  # catalog unchanged -> no drift


def test_work_item_ids_are_filesystem_safe():
    item = WorkItem(
        scenario="sparse-rural", stack="multitier", seed=7,
        sweep="sparse-rural/population", sweep_value=24.0,
    )
    assert "/" not in item.item_id
    assert WorkItem.from_json(item.to_json()) == item
    assert item.group == "sparse-rural/population@24 [multitier]"


def test_manifest_detects_fingerprint_drift_on_load(tmp_path):
    campaign = _campaign(tmp_path)
    payload = json.loads((campaign.directory / "manifest.json").read_text())
    payload["items"][0]["fingerprint"] = "0" * 16
    (campaign.directory / "manifest.json").write_text(json.dumps(payload))
    with pytest.raises(CampaignError, match="does not match the manifest"):
        Campaign.load(campaign.directory)


def test_campaign_new_refuses_existing_directory(tmp_path):
    _campaign(tmp_path)
    with pytest.raises(CampaignError, match="never\\s+overwrites"):
        _campaign(tmp_path)


# ----------------------------------------------------------------------
# Records: round trip + integrity gates
# ----------------------------------------------------------------------
def test_record_round_trip_is_byte_exact(tmp_path):
    campaign = _campaign(tmp_path)
    item = campaign.manifest.items[0]
    metrics = run_scenario_spec(item.spec(smoke=True), item.seed)
    path = campaign.write_record(item, metrics)
    first = path.read_bytes()
    record = campaign.read_record(item.item_id)
    assert record["metrics"] == {k: float(v) for k, v in metrics.items()}
    assert record["fingerprint"] == spec_fingerprint(item.spec(smoke=True))
    campaign.write_record(item, metrics)  # rewrite: identical bytes
    assert path.read_bytes() == first


def test_stray_record_fails_eagerly(tmp_path):
    campaign = _campaign(tmp_path)
    (campaign.items_dir / "not-in-manifest--s1.json").write_text("{}")
    with pytest.raises(CampaignError, match="unknown item"):
        campaign.completed_ids()


def test_inflight_tmp_files_are_ignored(tmp_path):
    campaign = _campaign(tmp_path)
    (campaign.items_dir / "whatever.json.tmp").write_text("{torn")
    assert campaign.completed_ids() == set()


def test_corrupt_record_fails_with_file_named(tmp_path):
    campaign = _campaign(tmp_path)
    item_id = campaign.manifest.item_ids()[0]
    campaign.record_path(item_id).write_text("{not json")
    with pytest.raises(CampaignError, match="not valid JSON"):
        campaign.read_record(item_id)


def test_merge_refuses_incomplete_campaign(tmp_path):
    campaign = _campaign(tmp_path, seeds=[1, 2])
    run_campaign(campaign, backend=SerialBackend(), max_items=1)
    with pytest.raises(CampaignError, match="1 pending"):
        merge_store(campaign)


def test_merge_rejects_record_fingerprint_mismatch(tmp_path):
    campaign = _campaign(tmp_path)
    run_campaign(campaign, backend=SerialBackend())
    item_id = campaign.manifest.item_ids()[0]
    payload = json.loads(campaign.record_path(item_id).read_text())
    payload["fingerprint"] = "f" * 16
    campaign.record_path(item_id).write_text(json.dumps(payload))
    with pytest.raises(CampaignError, match="different spec"):
        merge_store(campaign)


def test_load_store_integrity_gates(tmp_path):
    campaign = _campaign(tmp_path)
    with pytest.raises(CampaignError, match="no merged store"):
        load_store(campaign.directory)
    run_campaign(campaign, backend=SerialBackend())
    store = load_store(campaign.directory)  # accepts the directory
    assert store["schema"] == 1
    payload = json.loads(campaign.store_path.read_text())
    payload["records"].append(payload["records"][0])
    campaign.store_path.write_text(json.dumps(payload))
    with pytest.raises(CampaignError, match="duplicate item id"):
        load_store(campaign.store_path)
    payload["records"] = []
    campaign.store_path.write_text(json.dumps(payload))
    with pytest.raises(CampaignError, match="no records"):
        load_store(campaign.store_path)


# ----------------------------------------------------------------------
# Resume semantics + byte-identity (kill-free; SIGKILL suite separate)
# ----------------------------------------------------------------------
def test_resume_skips_completed_and_store_is_byte_identical(tmp_path):
    knobs = dict(seeds=[1, 2, 3], name="parity")
    straight = _campaign(tmp_path, "straight", **knobs)
    summary = run_campaign(straight, backend=SerialBackend())
    assert summary.done and summary.skipped == 0 and summary.ran == 3

    resumed = _campaign(tmp_path, "resumed", **knobs)
    partial = run_campaign(resumed, backend=SerialBackend(), max_items=2)
    assert not partial.done and partial.ran == 2
    rest = run_campaign(resumed, backend=SerialBackend())
    assert rest.done and rest.skipped == 2 and rest.ran == 1

    assert resumed.store_path.read_bytes() == straight.store_path.read_bytes()
    for item_id in straight.manifest.item_ids():
        assert (
            resumed.record_path(item_id).read_bytes()
            == straight.record_path(item_id).read_bytes()
        )


@needs_fork
def test_pool_resume_matches_serial_store(tmp_path):
    knobs = dict(seeds=[1, 2, 3], name="parity")
    serial = _campaign(tmp_path, "serial", **knobs)
    run_campaign(serial, backend=SerialBackend())
    pooled = _campaign(tmp_path, "pooled", **knobs)
    run_campaign(pooled, backend=ProcessPoolBackend(jobs=2), max_items=2,
                 batch_size=2)
    run_campaign(pooled, backend=ProcessPoolBackend(jobs=2))
    assert pooled.store_path.read_bytes() == serial.store_path.read_bytes()


def test_status_counts_groups(tmp_path):
    campaign = _campaign(tmp_path, seeds=[1, 2])
    run_campaign(campaign, backend=SerialBackend(), max_items=1)
    status = campaign.status()
    assert (status.total, status.completed, status.pending) == (2, 1, 1)
    assert status.groups == {f"{SCENARIO} [multitier]": (1, 2)}
    assert not status.done


# ----------------------------------------------------------------------
# Store re-aggregation == live replication
# ----------------------------------------------------------------------
def test_store_replications_match_live_aggregate(tmp_path):
    campaign = _campaign(tmp_path, seeds=[1, 2, 3])
    run_campaign(campaign, backend=SerialBackend())
    store = load_store(campaign.directory)
    (groups,) = [store_replications(store)]
    seeds, replication = groups[f"{SCENARIO} [multitier]"]
    assert seeds == [1, 2, 3]
    spec = get_scenario(SCENARIO).smoke()
    live = replicate(
        lambda seed: run_scenario_spec(spec, seed), [1, 2, 3],
        backend=SerialBackend(),
    )
    assert replication == live


def test_store_stack_comparison_renders_byte_identical_to_live(tmp_path):
    campaign = _campaign(
        tmp_path, stacks=["multitier", "cellularip", "mobileip"]
    )
    run_campaign(campaign, backend=SerialBackend())
    (rebuilt,) = store_stack_comparisons(load_store(campaign.directory))
    live = compare_scenario_stacks(
        [get_scenario(SCENARIO).smoke()],
        stacks=["multitier", "cellularip", "mobileip"],
        backend=SerialBackend(),
    )[0]
    assert format_stack_comparison(rebuilt) == format_stack_comparison(live)


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_cli_new_run_status_diff_happy_path(tmp_path, capsys):
    camp = tmp_path / "cli-camp"
    assert main([
        "campaign", "new", str(camp), "--scenarios", SCENARIO,
        "--smoke", "--seeds", "1", "2", "--name", "clicamp",
    ]) == 0
    assert "2 work item(s) queued" in capsys.readouterr().out

    assert main(["campaign", "run", str(camp), "--batch-size", "1"]) == 0
    assert "merged store written" in capsys.readouterr().out

    assert main(["campaign", "status", str(camp)]) == 0
    assert "2/2 item(s) completed" in capsys.readouterr().out

    assert main(["campaign", "diff", str(camp), str(camp), "--strict"]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_resume_is_run_again(tmp_path, capsys):
    camp = tmp_path / "resume-camp"
    assert main([
        "campaign", "new", str(camp), "--scenarios", SCENARIO,
        "--smoke", "--seeds", "1", "2", "--name", "resumecamp",
    ]) == 0
    assert main(["campaign", "run", str(camp), "--max-items", "1"]) == 0
    assert "still pending" in capsys.readouterr().out
    assert main(["campaign", "resume", str(camp)]) == 0
    out = capsys.readouterr().out
    assert "resuming: 1 completed item(s) skipped" in out
    assert "merged store written" in out


def test_cli_rejects_unknown_names_with_exit_2(tmp_path, capsys):
    camp = tmp_path / "bad-camp"
    assert main([
        "campaign", "new", str(camp), "--scenarios", "atlantis",
    ]) == 2
    assert main([
        "campaign", "new", str(camp), "--scenarios", SCENARIO,
        "--stacks", "hawaii",
    ]) == 2
    assert not camp.exists()  # failed before touching the filesystem
    assert main(["campaign", "status", str(camp)]) == 2
    err = capsys.readouterr().err
    assert "not a campaign directory" in err


def test_cli_diff_strict_exits_3_on_regression(tmp_path, capsys):
    """A seeded single-metric regression (zero-width CIs at one seed)
    must flip ``--strict`` to exit 3."""
    knobs = ["--scenarios", SCENARIO, "--smoke", "--seeds", "1"]
    camp_a = tmp_path / "a"
    camp_b = tmp_path / "b"
    assert main(["campaign", "new", str(camp_a), *knobs, "--name", "n"]) == 0
    assert main(["campaign", "new", str(camp_b), *knobs, "--name", "n"]) == 0
    assert main(["campaign", "run", str(camp_a)]) == 0
    assert main(["campaign", "run", str(camp_b)]) == 0
    capsys.readouterr()

    store = json.loads((camp_b / "results.json").read_text())
    record = store["records"][0]
    record["metrics"]["loss_rate"] = record["metrics"]["loss_rate"] + 0.5
    (camp_b / "results.json").write_text(json.dumps(store))

    assert main([
        "campaign", "diff", str(camp_a), str(camp_b), "--strict",
    ]) == 3
    out = capsys.readouterr().out
    assert "1 regressed" in out and "loss_rate" in out
