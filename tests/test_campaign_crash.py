"""Crash/kill hardening for the durable campaign queue (`repro.campaign`).

The campaign layer's headline guarantee: a worker SIGKILLed mid-grid
loses at most its in-flight batch, and a resume (serial *or*
``--jobs 2``) skips every completed item, re-runs only the remainder,
and leaves the whole campaign directory — per-item records and merged
``results.json`` — **byte-identical** to an uninterrupted serial run.

Mechanics: the worker runs as a real subprocess
(``python -m repro campaign run <dir> --batch-size 1``) so the SIGKILL
is a genuine process death, not an in-process exception; the test
polls the items directory and kills as soon as the first atomic record
lands.  Both campaigns are created with the same ``--name`` (the name
is stamped into the manifest digest and the store, so byte-parity
requires it).
"""

import json
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import Campaign, run_campaign
from repro.cli import main
from repro.experiments.exec import ProcessPoolBackend, SerialBackend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SCENARIO = "flash-crowd"  # ~0.2s per smoke seed: wide kill window
SEEDS = ["1", "2", "3", "4", "5", "6"]
NAME = "killcamp"


def _new_campaign(directory):
    assert main([
        "campaign", "new", str(directory), "--scenarios", SCENARIO,
        "--smoke", "--seeds", *SEEDS, "--name", NAME,
    ]) == 0


def _spawn_worker(directory):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            str(directory), "--batch-size", "1",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _kill_after_first_record(directory, deadline=60.0):
    """SIGKILL the worker as soon as one completion record exists."""
    worker = _spawn_worker(directory)
    items = pathlib.Path(directory) / "items"
    start = time.monotonic()
    try:
        while time.monotonic() - start < deadline:
            if worker.poll() is not None:
                pytest.fail(
                    "worker finished before it could be killed; "
                    "enlarge the grid or slow the scenario"
                )
            if any(items.glob("*.json")):
                break
            time.sleep(0.005)
        else:
            pytest.fail("no completion record appeared before the deadline")
    finally:
        if worker.poll() is None:
            worker.send_signal(signal.SIGKILL)
        worker.wait(timeout=30)
    assert worker.returncode == -signal.SIGKILL


def _assert_directories_byte_identical(killed, straight):
    killed, straight = pathlib.Path(killed), pathlib.Path(straight)
    names = sorted(
        path.relative_to(straight) for path in straight.rglob("*")
        if path.is_file()
    )
    killed_names = sorted(
        path.relative_to(killed) for path in killed.rglob("*")
        if path.is_file()
    )
    assert killed_names == names  # no strays, no leftover *.tmp
    for name in names:
        assert (killed / name).read_bytes() == (straight / name).read_bytes(), (
            f"{name} differs between killed-then-resumed and straight run"
        )


@pytest.fixture(scope="module")
def straight_run(tmp_path_factory):
    """One uninterrupted serial run of the reference grid."""
    directory = tmp_path_factory.mktemp("campaigns") / "straight"
    _new_campaign(directory)
    summary = run_campaign(Campaign.load(directory), backend=SerialBackend())
    assert summary.done and summary.skipped == 0
    return directory


def test_sigkill_then_serial_resume_is_byte_identical(tmp_path, straight_run):
    camp = tmp_path / "killed-serial"
    _new_campaign(camp)
    _kill_after_first_record(camp)

    campaign = Campaign.load(camp)
    done_before = len(campaign.completed_ids())
    assert 1 <= done_before < len(SEEDS)  # partial, not empty, not done

    summary = run_campaign(campaign, backend=SerialBackend())
    assert summary.done
    assert summary.skipped == done_before  # completed items never re-ran
    assert summary.ran == len(SEEDS) - done_before

    _assert_directories_byte_identical(camp, straight_run)


@needs_fork
def test_sigkill_then_pool_resume_is_byte_identical(tmp_path, straight_run):
    camp = tmp_path / "killed-pool"
    _new_campaign(camp)
    _kill_after_first_record(camp)

    campaign = Campaign.load(camp)
    done_before = len(campaign.completed_ids())
    summary = run_campaign(campaign, backend=ProcessPoolBackend(jobs=2))
    assert summary.done and summary.skipped == done_before

    _assert_directories_byte_identical(camp, straight_run)


def test_double_kill_then_resume_is_byte_identical(tmp_path, straight_run):
    """Two successive SIGKILLs (crash during a resume too) still
    converge to the identical end state."""
    camp = tmp_path / "killed-twice"
    _new_campaign(camp)
    _kill_after_first_record(camp)
    first_wave = len(Campaign.load(camp).completed_ids())

    worker = _spawn_worker(camp)  # resume, then die again
    items = camp / "items"
    start = time.monotonic()
    while time.monotonic() - start < 60.0 and worker.poll() is None:
        if len(list(items.glob("*.json"))) > first_wave:
            break
        time.sleep(0.005)
    if worker.poll() is None:
        worker.send_signal(signal.SIGKILL)
    worker.wait(timeout=30)

    summary = run_campaign(Campaign.load(camp), backend=SerialBackend())
    assert summary.done
    _assert_directories_byte_identical(camp, straight_run)


def test_kill_leaves_no_torn_record(tmp_path):
    """Every record present after a SIGKILL parses and validates —
    the atomic tmp-file + rename protocol leaves nothing half-written."""
    camp = tmp_path / "killed-torn"
    _new_campaign(camp)
    _kill_after_first_record(camp)
    campaign = Campaign.load(camp)
    for item_id in sorted(campaign.completed_ids()):
        record = campaign.read_record(item_id)  # raises on torn JSON
        assert record["metrics"]
        payload = json.loads(campaign.record_path(item_id).read_text())
        assert payload == record
