"""Tests for traffic sources, sinks and the stats helpers."""

import math

import numpy as np
import pytest

from repro.metrics import Estimate, format_series, format_table, mean_confidence, ratio
from repro.net import Packet, ip
from repro.sim import Simulator
from repro.traffic import (
    CBRSource,
    ElasticSource,
    FlowSink,
    OnOffSource,
    PoissonSource,
    VBRVideoSource,
)


def collect(sim):
    """A send callable that records (time, packet)."""
    log = []

    def send(packet):
        log.append((sim.now, packet))
        return True

    return send, log


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
def test_cbr_rate_and_spacing():
    sim = Simulator()
    send, log = collect(sim)
    source = CBRSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        rate_bps=80e3, packet_size=1000, duration=1.0,
    ).start()
    sim.run(until=2.0)
    # 80 kbit/s at 1000 B -> one packet per 100 ms -> 10 packets in 1 s
    # (11 if float drift lets the boundary emission through).
    assert source.packets_sent in (10, 11)
    gaps = {round(b - a, 9) for (a, _), (b, _) in zip(log, log[1:])}
    assert gaps == {0.1}


def test_cbr_sequences_increase():
    sim = Simulator()
    send, log = collect(sim)
    CBRSource(sim, send, ip("10.0.0.1"), ip("10.0.0.2"), duration=0.5).start()
    sim.run()
    sequences = [packet.seq for _t, packet in log]
    assert sequences == list(range(len(sequences)))


def test_cbr_validation():
    sim = Simulator()
    send, _ = collect(sim)
    with pytest.raises(ValueError):
        CBRSource(sim, send, ip("10.0.0.1"), ip("10.0.0.2"), rate_bps=0)


def test_poisson_mean_rate():
    sim = Simulator()
    send, log = collect(sim)
    rng = np.random.default_rng(42)
    PoissonSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        rng, mean_rate_pps=100.0, duration=20.0,
    ).start()
    sim.run()
    # 100 pps over 20 s -> ~2000; allow 15% slack.
    assert 1700 < len(log) < 2300


def test_onoff_produces_bursts_and_silences():
    sim = Simulator()
    send, log = collect(sim)
    rng = np.random.default_rng(7)
    OnOffSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        rng, mean_on=0.5, mean_off=1.0, duration=30.0,
    ).start()
    sim.run()
    gaps = [b - a for (a, _), (b, _) in zip(log, log[1:])]
    packet_interval = 200 * 8 / 64e3
    long_gaps = [g for g in gaps if g > packet_interval * 3]
    assert long_gaps, "on/off source never went silent"
    assert len(log) > 100


def test_vbr_video_fragments_frames():
    sim = Simulator()
    send, log = collect(sim)
    rng = np.random.default_rng(3)
    source = VBRVideoSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        rng, mean_rate_bps=400e3, frame_rate=25.0, mtu=500, duration=4.0,
    ).start()
    sim.run()
    assert source.frames_sent == 100
    assert all(packet.size <= 500 for _t, packet in log)
    # Mean rate within 40% of nominal despite burstiness.
    total_bits = sum(packet.size for _t, packet in log) * 8
    assert 0.6 * 400e3 * 4 < total_bits < 1.4 * 400e3 * 4


def test_vbr_validation():
    sim = Simulator()
    send, _ = collect(sim)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        VBRVideoSource(sim, send, ip("10.0.0.1"), ip("10.0.0.2"), rng, correlation=1.5)


def test_elastic_source_grows_when_acked():
    sim = Simulator()
    source_ref = {}

    def send(packet):
        # Instant perfect network: ack everything immediately.
        sim.schedule(0.001, source_ref["src"].acknowledge, packet.seq)
        return True

    source = ElasticSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        initial_window=2, duration=5.0,
    )
    source_ref["src"] = source
    source.start()
    sim.run()
    assert source.windows_clean > 0
    assert source.windows_lossy == 0
    assert source.window > 2


def test_elastic_source_backs_off_on_loss():
    sim = Simulator()
    source_ref = {}
    counter = {"n": 0}

    def send(packet):
        counter["n"] += 1
        if counter["n"] % 3 == 0:
            return True  # swallowed: never acked
        sim.schedule(0.001, source_ref["src"].acknowledge, packet.seq)
        return True

    source = ElasticSource(
        sim, send, ip("10.0.0.1"), ip("10.0.0.2"),
        initial_window=8, feedback_timeout=0.05, duration=3.0,
    )
    source_ref["src"] = source
    source.start()
    sim.run()
    assert source.windows_lossy > 0


# ----------------------------------------------------------------------
# Sink
# ----------------------------------------------------------------------
def make_packet(seq, created_at=0.0, size=500, flow="f1"):
    return Packet(
        src=ip("10.0.0.1"), dst=ip("10.0.0.2"), size=size,
        flow_id=flow, seq=seq, created_at=created_at,
    )


def test_sink_counts_and_loss():
    sink = FlowSink("f1")
    for seq in (0, 1, 3):
        sink.on_packet(make_packet(seq), now=1.0)
    assert sink.received == 3
    assert sink.lost(5) == 2
    assert sink.loss_rate(5) == pytest.approx(0.4)
    assert sink.missing_sequences(5) == [2, 4]


def test_sink_ignores_other_flows():
    sink = FlowSink("f1")
    sink.on_packet(make_packet(0, flow="other"), now=1.0)
    assert sink.received == 0


def test_sink_detects_duplicates_and_reordering():
    sink = FlowSink("f1")
    sink.on_packet(make_packet(0), now=1.0)
    sink.on_packet(make_packet(2), now=1.1)
    sink.on_packet(make_packet(1), now=1.2)  # late
    sink.on_packet(make_packet(2), now=1.3)  # duplicate
    assert sink.out_of_order == 1
    assert sink.duplicates == 1
    assert sink.received == 3


def test_sink_delay_and_gap():
    sink = FlowSink("f1")
    sink.on_packet(make_packet(0, created_at=0.0), now=0.1)
    sink.on_packet(make_packet(1, created_at=1.0), now=1.1)
    sink.on_packet(make_packet(2, created_at=5.0), now=5.1)
    assert sink.mean_delay() == pytest.approx(0.1)
    assert sink.max_gap() == pytest.approx(4.0)


def test_sink_jitter_zero_for_constant_transit():
    sink = FlowSink("f1")
    for seq in range(10):
        sink.on_packet(make_packet(seq, created_at=seq * 0.1), now=seq * 0.1 + 0.05)
    assert sink.jitter() == pytest.approx(0.0)


def test_sink_jitter_positive_for_variable_transit():
    sink = FlowSink("f1")
    for seq in range(10):
        transit = 0.05 if seq % 2 == 0 else 0.15
        sink.on_packet(make_packet(seq, created_at=seq * 0.1), now=seq * 0.1 + transit)
    assert sink.jitter() > 0.0


def test_sink_throughput():
    sink = FlowSink("f1")
    for seq in range(11):
        sink.on_packet(make_packet(seq, size=1000, created_at=0.0), now=seq * 0.1)
    # 10,000 B over 1.0 s window (first to last) = 88 kbit/s.
    assert sink.throughput_bps() == pytest.approx(11 * 1000 * 8 / 1.0, rel=0.01)


def test_sink_summary_keys():
    sink = FlowSink("f1")
    sink.on_packet(make_packet(0), now=0.1)
    summary = sink.summary(sent=2)
    assert summary["received"] == 1
    assert summary["loss_rate"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_mean_confidence_basics():
    estimate = mean_confidence([1.0, 2.0, 3.0, 4.0, 5.0])
    assert estimate.mean == pytest.approx(3.0)
    assert estimate.n == 5
    assert estimate.low < 3.0 < estimate.high


def test_mean_confidence_single_sample():
    estimate = mean_confidence([7.0])
    assert estimate.mean == 7.0
    assert estimate.half_width == 0.0


def test_mean_confidence_empty():
    estimate = mean_confidence([])
    assert math.isnan(estimate.mean)


def test_mean_confidence_constant_samples():
    estimate = mean_confidence([2.0, 2.0, 2.0])
    assert estimate.half_width == 0.0


def test_estimate_str():
    assert "±" in str(Estimate(3.0, 0.5, 5))
    assert str(Estimate(3.0, 0.0, 5)) == "3"


def test_ratio_handles_zero():
    assert ratio(4.0, 2.0) == 2.0
    assert math.isnan(ratio(1.0, 0.0))


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "---" in lines[1]


def test_format_series_columns():
    text = format_series("x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
    assert "y1" in text and "y2" in text and "40" in text
