"""Golden tests for cross-run regression diffs (`repro.campaign.diff`).

Two synthetic stores live in ``tests/data/``: run A (the baseline) and
run B, seeded with one regression per polarity class — ``loss_rate`` up
and ``delivered`` down (regressed), ``throughput`` up (improved),
``handoffs`` shifted (direction-neutral change) — plus one grid cell
present in only one run each.  The rendered diff is pinned
byte-for-byte in ``campaign_diff_regression.txt``; diffing A against
itself is pinned to the explicit "no regressions" report in
``campaign_diff_identical.txt``.

Beyond the goldens: polarity lookup (namespaced leaf matching), the
CI-disjoint significance rule (overlap is never flagged, zero-width
single-seed intervals always are), and ``--strict`` semantics via
``CampaignDiff.regressions``.
"""

import pathlib

from repro.campaign import diff_stores, format_campaign_diff, load_store
from repro.campaign.diff import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    MetricChange,
    metric_polarity,
)
from repro.metrics.stats import Estimate

DATA = pathlib.Path(__file__).resolve().parent / "data"


def _stores():
    a = load_store(DATA / "campaign_store_a.json")
    b = load_store(DATA / "campaign_store_b.json")
    return a, b


# ----------------------------------------------------------------------
# Goldens
# ----------------------------------------------------------------------
def test_seeded_regression_matches_golden_diff_table():
    a, b = _stores()
    rendered = format_campaign_diff(
        diff_stores(a, b, label_a="runA", label_b="runB")
    ) + "\n"
    golden = (DATA / "campaign_diff_regression.txt").read_text()
    assert rendered == golden


def test_identical_runs_match_golden_no_regressions():
    a, _b = _stores()
    rendered = format_campaign_diff(
        diff_stores(a, a, label_a="runA", label_b="runA")
    ) + "\n"
    golden = (DATA / "campaign_diff_identical.txt").read_text()
    assert rendered == golden
    assert "no regressions" in rendered


def test_seeded_verdicts_are_exactly_as_designed():
    a, b = _stores()
    diff = diff_stores(a, b)
    verdicts = {
        change.metric: change.verdict for change in diff.significant()
    }
    assert verdicts == {
        "loss_rate": "regressed",
        "delivered": "regressed",
        "throughput": "improved",
        "handoffs": "changed",
    }
    assert sorted(change.metric for change in diff.regressions()) == [
        "delivered", "loss_rate",
    ]
    assert diff.only_in_a == ["campus-dense [multitier]"]
    assert diff.only_in_b == ["campus-dense [cellularip]"]
    # mean_delay is identical across runs: compared, but never flagged
    assert any(
        change.metric == "mean_delay" and change.verdict == "ok"
        for change in diff.changes
    )


def test_show_all_appends_the_stable_rows():
    a, b = _stores()
    diff = diff_stores(a, b, label_a="runA", label_b="runB")
    rendered = format_campaign_diff(diff, show_all=True)
    assert "within confidence intervals" in rendered
    assert "mean_delay" in rendered


# ----------------------------------------------------------------------
# Significance rule + polarity
# ----------------------------------------------------------------------
def test_overlapping_intervals_are_never_significant():
    a, _b = _stores()
    diff = diff_stores(a, a)
    assert diff.significant() == []
    assert all(change.verdict == "ok" for change in diff.changes)


def test_metric_polarity_judges_the_namespaced_leaf():
    assert metric_polarity("loss_rate") == +1
    assert metric_polarity("cip.handoff_latency") == +1
    assert metric_polarity("delivered") == -1
    assert metric_polarity("mip.delivered") == -1
    assert metric_polarity("handoffs") == 0
    assert metric_polarity("cip.route_updates") == 0
    assert not (LOWER_IS_BETTER & HIGHER_IS_BETTER)


def test_metric_change_delta_and_relative():
    change = MetricChange(
        group="g", metric="loss_rate",
        a=Estimate(mean=0.2, half_width=0.01, n=3),
        b=Estimate(mean=0.3, half_width=0.01, n=3),
        verdict="regressed",
    )
    assert change.delta == 0.3 - 0.2
    assert abs(change.relative - 0.5) < 1e-12
    assert change.significant
    zero = MetricChange(
        group="g", metric="x",
        a=Estimate(mean=0.0, half_width=0.0, n=1),
        b=Estimate(mean=1.0, half_width=0.0, n=1),
        verdict="changed",
    )
    assert zero.relative != zero.relative  # nan when A's mean is 0
