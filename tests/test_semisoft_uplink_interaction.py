"""End-to-end pin of the semisoft/uplink interaction fix.

Uplink traffic (e.g. acks) continuing through the *old* base station
during the semisoft dual-cast interval must not destroy the advance
mapping — otherwise the downlink reverts to the old path and the radio
switch loses packets.
"""

from repro.experiments.baselines import build_cip_world
from repro.net import Packet
from repro.radio.cells import Tier


def test_semisoft_handoff_lossless_despite_uplink_chatter():
    sim, domain, gw, leaves, internet, cn, mn = build_cip_world(
        route_timeout=5.0, semisoft_delay=0.08
    )
    mn.attach_to(leaves[0])
    sim.run(until=0.5)

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))

    # Downlink stream.
    def send_down(seq):
        internet.receive(
            Packet(src=cn.address, dst=mn.address, size=500, seq=seq,
                   created_at=sim.now, flow_id="down")
        )

    for seq in range(60):
        sim.schedule(seq * 0.005, send_down, seq)

    # Concurrent uplink chatter from the mobile (refreshes caches via
    # whichever base station currently serves it).
    def chatter():
        while sim.now < 2.0:
            mn.originate(
                Packet(src=mn.address, dst=cn.address, size=80,
                       created_at=sim.now, protocol="data")
            )
            yield sim.timeout(0.004)

    sim.process(chatter())

    # Semisoft handoff to the far subtree (crossover at the gateway) in
    # the middle of all that.
    sim.schedule(0.1, lambda: sim.process(mn.handoff_semisoft(leaves[3])))
    sim.run(until=4.0)

    lost = set(range(60)) - set(got)
    assert lost == set(), f"semisoft + uplink chatter lost {sorted(lost)}"
    assert mn.serving_bs is leaves[3]


def test_tier_link_budget_closes_at_cell_edge():
    """Invariant: with default radio parameters, a mobile at the nominal
    cell edge of every tier is still above the usable floor."""
    from repro.radio import PropagationModel, TIER_DEFAULTS

    model = PropagationModel(exponent=3.5)
    for tier, defaults in TIER_DEFAULTS.items():
        rss_at_edge = model.received_power_dbm(
            defaults["tx_power_dbm"], defaults["radius"]
        )
        assert rss_at_edge >= -95.0, (
            f"{tier.name}: {rss_at_edge:.1f} dBm at {defaults['radius']} m"
        )


def test_tier_bandwidth_ordering():
    """Smaller cells must offer more per-user bandwidth (the premise of
    the paper's bandwidth-demand handoff factor)."""
    from repro.radio import TIER_DEFAULTS

    pico = TIER_DEFAULTS[Tier.PICO]["bandwidth"]
    micro = TIER_DEFAULTS[Tier.MICRO]["bandwidth"]
    macro = TIER_DEFAULTS[Tier.MACRO]["bandwidth"]
    assert pico > micro > macro
