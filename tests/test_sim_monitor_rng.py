"""Tests for the measurement probes and the named RNG streams."""

import math

import pytest

from repro.sim import Monitor, RandomStreams, Simulator
from repro.sim.monitor import Counter, Series, TimeWeightedGauge


# ----------------------------------------------------------------------
# Counters and series
# ----------------------------------------------------------------------
def test_counter_increments():
    counter = Counter("drops")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    counter = Counter("drops")
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_series_statistics():
    series = Series("delay")
    for t, v in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]:
        series.record(t, v)
    assert len(series) == 3
    assert series.mean() == pytest.approx(2.0)
    assert series.last() == 3.0
    times, values = series.as_arrays()
    assert list(times) == [0.0, 1.0, 2.0]


def test_empty_series_mean_is_nan():
    series = Series("empty")
    assert math.isnan(series.mean())
    assert math.isnan(series.last())


# ----------------------------------------------------------------------
# Time-weighted gauge
# ----------------------------------------------------------------------
def test_gauge_time_average_weights_by_duration():
    sim = Simulator()
    gauge = TimeWeightedGauge(sim, "queue", initial=0.0)

    def driver():
        yield sim.timeout(2.0)   # level 0 for 2s
        gauge.set(10.0)
        yield sim.timeout(2.0)   # level 10 for 2s
        gauge.set(0.0)
        yield sim.timeout(4.0)   # level 0 for 4s

    sim.process(driver())
    sim.run()
    # Integral: 0*2 + 10*2 + 0*4 = 20 over 8s -> 2.5.
    assert gauge.time_average() == pytest.approx(2.5)


def test_gauge_adjust_delta():
    sim = Simulator()
    gauge = TimeWeightedGauge(sim, "q")
    gauge.adjust(+3.0)
    gauge.adjust(-1.0)
    assert gauge.level == 2.0


# ----------------------------------------------------------------------
# Monitor namespace
# ----------------------------------------------------------------------
def test_monitor_counters_and_snapshot():
    sim = Simulator()
    monitor = Monitor(sim)
    monitor.count("handoffs")
    monitor.count("handoffs", 2)
    monitor.record("delay", 1.0, 0.5)
    gauge = monitor.gauge("queue")
    gauge.set(4.0)
    snapshot = monitor.snapshot()
    assert snapshot["count.handoffs"] == 3
    assert "series.delay.mean" in snapshot
    assert "gauge.queue" in snapshot
    assert monitor.get_count("handoffs") == 3
    assert monitor.get_count("missing") == 0


def test_monitor_gauge_requires_simulator():
    monitor = Monitor()  # unbound
    with pytest.raises(ValueError):
        monitor.gauge("queue")


# ----------------------------------------------------------------------
# RandomStreams extras
# ----------------------------------------------------------------------
def test_streams_spawn_derives_independent_factory():
    streams = RandomStreams(42)
    child_a = streams.spawn("domain-a")
    child_b = streams.spawn("domain-b")
    assert child_a.uniform("x") != child_b.uniform("x")
    # Deterministic: respawning gives the same values.
    assert RandomStreams(42).spawn("domain-a").uniform("x") == pytest.approx(
        RandomStreams(42).spawn("domain-a").uniform("x")
    )


def test_streams_choice_and_bernoulli():
    streams = RandomStreams(7)
    options = ["a", "b", "c"]
    picks = {streams.choice("pick", options) for _ in range(50)}
    assert picks <= set(options)
    assert len(picks) > 1
    heads = sum(streams.bernoulli("coin", 0.5) for _ in range(200))
    assert 60 < heads < 140


def test_streams_integers_bounds():
    streams = RandomStreams(3)
    values = [streams.integers("die", 1, 7) for _ in range(100)]
    assert all(1 <= v < 7 for v in values)


def test_streams_validation():
    streams = RandomStreams(0)
    with pytest.raises(ValueError):
        streams.exponential("x", 0.0)
    with pytest.raises(ValueError):
        streams.bernoulli("x", 1.5)
