"""Tests for the soft-state routing cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellularip import RoutingCache
from repro.net import Node, ip
from repro.sim import Simulator


def make_cache(timeout=2.0):
    sim = Simulator()
    cache = RoutingCache(sim, timeout=timeout)
    a = Node(sim, "a")
    b = Node(sim, "b")
    return sim, cache, a, b


def test_refresh_then_lookup():
    sim, cache, a, b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    assert cache.lookup(ip("10.0.0.1")) == [a]


def test_lookup_unknown_returns_empty():
    _sim, cache, _a, _b = make_cache()
    assert cache.lookup(ip("10.0.0.9")) == []


def test_entry_expires_after_timeout():
    sim, cache, a, _b = make_cache(timeout=2.0)
    cache.refresh(ip("10.0.0.1"), a)
    sim.timeout(3.0)
    sim.run()
    assert cache.lookup(ip("10.0.0.1")) == []
    assert cache.expirations == 1


def test_refresh_extends_lifetime():
    sim, cache, a, _b = make_cache(timeout=2.0)
    cache.refresh(ip("10.0.0.1"), a)
    sim.timeout(1.5)
    sim.run()
    cache.refresh(ip("10.0.0.1"), a)
    sim.timeout(1.5)
    sim.run()  # now=3.0, entry valid until 3.5
    assert cache.lookup(ip("10.0.0.1")) == [a]


def test_freshest_regular_mapping_wins():
    sim, cache, a, b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    cache.refresh(ip("10.0.0.1"), b)
    # The stale entry coexists (own timer) but lookup follows the
    # freshest regular mapping only.
    assert cache.lookup(ip("10.0.0.1")) == [b]


def test_old_path_refresh_does_not_wipe_semisoft_mapping():
    """Uplink traffic still flowing via the old base station must not
    destroy the semisoft (new-path) mapping — the dual-cast interval
    has to survive until the radio actually switches."""
    sim, cache, a, b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)              # old path
    cache.refresh(ip("10.0.0.1"), b, semisoft=True)  # advance update
    cache.refresh(ip("10.0.0.1"), a)              # ack via old path
    assert set(cache.lookup(ip("10.0.0.1"))) == {a, b}


def test_semisoft_refresh_adds_second_mapping():
    sim, cache, a, b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    cache.refresh(ip("10.0.0.1"), b, semisoft=True)
    assert set(cache.lookup(ip("10.0.0.1"))) == {a, b}


def test_regular_refresh_after_semisoft_hardens():
    sim, cache, a, b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    cache.refresh(ip("10.0.0.1"), b, semisoft=True)
    cache.refresh(ip("10.0.0.1"), b)  # radio switched: harden
    assert cache.lookup(ip("10.0.0.1")) == [b]


def test_remove_clears_mapping():
    sim, cache, a, _b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    cache.remove(ip("10.0.0.1"))
    assert cache.lookup(ip("10.0.0.1")) == []


def test_purge_expired_counts():
    sim, cache, a, b = make_cache(timeout=1.0)
    cache.refresh(ip("10.0.0.1"), a)
    cache.refresh(ip("10.0.0.2"), b)
    sim.timeout(2.0)
    sim.run()
    assert cache.purge_expired() == 2
    assert len(cache) == 0


def test_invalid_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        RoutingCache(sim, timeout=0.0)


def test_contains_and_mobiles():
    sim, cache, a, _b = make_cache()
    cache.refresh(ip("10.0.0.1"), a)
    assert ip("10.0.0.1") in cache
    assert cache.mobiles() == [ip("10.0.0.1")]


@settings(max_examples=50, deadline=None)
@given(
    refresh_times=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
    ),
    timeout=st.floats(min_value=0.5, max_value=10.0),
    probe_offset=st.floats(min_value=0.01, max_value=20.0),
)
def test_property_entry_live_iff_within_timeout_of_last_refresh(
    refresh_times, timeout, probe_offset
):
    """Soft-state invariant: a mapping is alive exactly when the last
    refresh happened within ``timeout`` of the probe instant."""
    from hypothesis import assume

    # Probing exactly at the expiry instant is ambiguous under float
    # rounding; demand a clear margin.
    assume(abs(probe_offset - timeout) > 1e-6)
    sim = Simulator()
    cache = RoutingCache(sim, timeout=timeout)
    node = Node(sim, "n")
    mobile = ip("10.0.0.1")
    last_refresh = max(refresh_times)
    probe_time = last_refresh + probe_offset

    for when in sorted(refresh_times):
        sim.schedule(when, cache.refresh, mobile, node)
    result = []
    sim.schedule(probe_time, lambda: result.append(cache.lookup(mobile)))
    sim.run()

    expected_alive = probe_offset < timeout
    assert bool(result[0]) == expected_alive
