"""Tests for the mobility controller: radio-driven attachment, the
three-factor decision, and tier overflow on rejection."""

import numpy as np
import pytest

from repro.mobility import Highway, Stationary, TracePlayback
from repro.multitier.architecture import WORLD_BOUNDS, MultiTierWorld
from repro.multitier.policy import (
    AlwaysMacroPolicy,
    Candidate,
    HandoffFactors,
    TierSelectionPolicy,
)
from repro.radio.cells import Tier
from repro.radio.geometry import Point


def test_controller_initial_attach_by_signal():
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    # Standing in the middle of micro cell B.
    world.add_controller(mn, Stationary(Point(-2700, 0), WORLD_BOUNDS))
    world.sim.run(until=3.0)
    assert mn.serving_bs is world.domain1["B"]
    assert mn.serving_tier is Tier.MICRO


def test_controller_walk_triggers_micro_handoffs():
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    # Scripted walk from B through A to C along the street.
    trace = TracePlayback(
        [(0.0, Point(-2700, 0)), (120.0, Point(-1300, 0))], WORLD_BOUNDS
    )
    world.add_controller(mn, trace, sample_period=0.5)
    world.sim.run(until=130.0)
    assert mn.serving_bs is world.domain1["C"]
    assert mn.handoffs_completed >= 2  # B -> A -> C at least


def test_controller_fast_mobile_prefers_macro():
    world = MultiTierWorld()
    rng = np.random.default_rng(1)
    mn = world.add_mobile("mn")
    model = Highway(Point(-2700, 0), WORLD_BOUNDS, rng, speed=30.0, wrap=False)
    world.add_controller(mn, model)
    world.sim.run(until=10.0)
    assert mn.serving_tier is Tier.MACRO


def test_controller_slow_mobile_prefers_micro():
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    world.add_controller(mn, Stationary(Point(-2000, 0), WORLD_BOUNDS))
    world.sim.run(until=5.0)
    assert mn.serving_tier is Tier.MICRO


def test_controller_macro_policy_overrides():
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    world.add_controller(
        mn, Stationary(Point(-2000, 0), WORLD_BOUNDS), policy=AlwaysMacroPolicy()
    )
    world.sim.run(until=5.0)
    assert mn.serving_tier is Tier.MACRO


def test_controller_coverage_hole_falls_back_to_macro():
    """The corridor between C and E has no micro coverage: a pedestrian
    walking it must ride the macro umbrella (Fig 3.4 case b)."""
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    trace = TracePlayback(
        [(0.0, Point(-1300, 0)), (60.0, Point(0, 0))], WORLD_BOUNDS
    )
    world.add_controller(mn, trace, sample_period=0.5)
    world.sim.run(until=70.0)
    assert mn.serving_tier is Tier.MACRO


def test_controller_rejection_overflows_to_next_candidate():
    world = MultiTierWorld(domain_kwargs={"guard_channels": 0})
    d1 = world.domain1
    # Saturate C so the walker's handoff into it is rejected.
    for index in range(d1["C"].channels.capacity):
        filler = world.add_mobile(f"filler{index}")
        assert filler.initial_attach(d1["C"])
    mn = world.add_mobile("mn")
    trace = TracePlayback(
        [(0.0, Point(-2000, 0)), (80.0, Point(-1300, 0))], WORLD_BOUNDS
    )
    world.add_controller(mn, trace, sample_period=0.5)
    world.sim.run(until=90.0)
    # C was full: the mobile ends up on the macro umbrella instead.
    assert mn.serving_bs is not d1["C"]
    assert mn.serving_bs is not None
    assert mn.handoffs_rejected >= 1


# ----------------------------------------------------------------------
# Policy unit tests
# ----------------------------------------------------------------------
class _StubStation:
    def __init__(self, tier):
        self.tier = tier


def make_candidates():
    return [
        Candidate(station=_StubStation(Tier.MICRO), rss_dbm=-70.0),
        Candidate(station=_StubStation(Tier.MACRO), rss_dbm=-60.0),
        Candidate(station=_StubStation(Tier.MICRO), rss_dbm=-80.0),
    ]


def test_policy_fast_mobile_orders_macro_first():
    policy = TierSelectionPolicy(speed_threshold=15.0)
    ordered = policy.order_candidates(
        make_candidates(), HandoffFactors(speed=25.0)
    )
    assert ordered[0].tier is Tier.MACRO


def test_policy_slow_mobile_orders_micro_first_by_signal():
    policy = TierSelectionPolicy()
    ordered = policy.order_candidates(
        make_candidates(), HandoffFactors(speed=1.0)
    )
    assert ordered[0].tier is Tier.MICRO
    assert ordered[0].rss_dbm == -70.0
    # Overflow candidate (macro) still present, just later.
    assert any(c.tier is Tier.MACRO for c in ordered)


def test_policy_bandwidth_demand_prefers_smallest_cells():
    policy = TierSelectionPolicy(demand_threshold=200e3)
    preference = policy.tier_preference(
        HandoffFactors(speed=1.0, bandwidth_demand=384e3)
    )
    assert preference == [Tier.PICO, Tier.MICRO, Tier.MACRO]


def test_policy_default_preference_micro_first():
    policy = TierSelectionPolicy()
    preference = policy.tier_preference(HandoffFactors(speed=1.0))
    assert preference[0] is Tier.MICRO
    assert preference[-1] is Tier.MACRO


def test_policy_validation():
    with pytest.raises(ValueError):
        TierSelectionPolicy(speed_threshold=0.0)
