"""Tests for packets, links, routers and topology routing."""

import pytest

from repro.net import (
    Network,
    Node,
    Packet,
    Prefix,
    Router,
    binary_tree_topology,
    decapsulate,
    encapsulate,
    ip,
    star_topology,
)
from repro.net.router import ForwardingTable
from repro.sim import Simulator


def make_packet(src="10.0.0.1", dst="10.0.0.2", size=1000, **kw):
    return Packet(src=ip(src), dst=ip(dst), size=size, **kw)


# ----------------------------------------------------------------------
# Packet
# ----------------------------------------------------------------------
def test_packet_requires_positive_size():
    with pytest.raises(ValueError):
        make_packet(size=0)


def test_packet_uids_unique():
    a, b = make_packet(), make_packet()
    assert a.uid != b.uid


def test_packet_copy_overrides():
    original = make_packet(seq=7)
    clone = original.copy(dst=ip("10.9.9.9"))
    assert clone.seq == 7
    assert clone.dst == ip("10.9.9.9")
    assert clone.uid != original.uid


def test_encapsulate_adds_header_and_decapsulate_restores():
    inner = make_packet(size=1000)
    outer = encapsulate(inner, ip("10.0.1.1"), ip("10.0.2.2"))
    assert outer.size == 1020
    assert outer.protocol == "ipip"
    assert decapsulate(outer) is inner


def test_decapsulate_rejects_plain_packet():
    with pytest.raises(ValueError):
        decapsulate(make_packet())


# ----------------------------------------------------------------------
# Link
# ----------------------------------------------------------------------
def test_link_delivery_time_includes_serialization_and_propagation():
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    b = network.host("b")
    # 1 Mbps, 10 ms propagation: 1000 B => 8 ms serialization.
    network.connect(a, b, bandwidth=1e6, delay=0.010)
    arrivals = []
    b.on_default(lambda packet, link: arrivals.append(sim.now))

    a.send_via(b, make_packet(dst=str(b.address), size=1000))
    sim.run()
    assert arrivals == [pytest.approx(0.018)]


def test_link_serializes_back_to_back_packets():
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    b = network.host("b")
    network.connect(a, b, bandwidth=1e6, delay=0.0)
    arrivals = []
    b.on_default(lambda packet, link: arrivals.append(sim.now))

    for _ in range(3):
        a.send_via(b, make_packet(dst=str(b.address), size=1000))
    sim.run()
    assert arrivals == [pytest.approx(0.008), pytest.approx(0.016), pytest.approx(0.024)]


def test_link_queue_overflow_drops():
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    b = network.host("b")
    forward, _backward = network.connect(a, b, bandwidth=1e6, delay=0.0, queue_limit=2)

    accepted = [a.send_via(b, make_packet(dst=str(b.address))) for _ in range(5)]
    assert accepted == [True, True, False, False, False]
    assert forward.stats.dropped_queue == 3
    sim.run()
    assert forward.stats.delivered == 2


def test_link_down_drops_everything():
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    b = network.host("b")
    forward, _ = network.connect(a, b)
    forward.up = False
    assert not a.send_via(b, make_packet(dst=str(b.address)))


def test_link_validation():
    sim = Simulator()
    a = Node(sim, "a", "10.0.0.1")
    b = Node(sim, "b", "10.0.0.2")
    from repro.net.link import Link

    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=0)
    with pytest.raises(ValueError):
        Link(sim, a, b, delay=-1)
    with pytest.raises(ValueError):
        Link(sim, a, b, queue_limit=0)
    with pytest.raises(ValueError):
        Link(sim, a, b, loss_rate=1.5)


def test_send_via_unconnected_neighbor_raises():
    sim = Simulator()
    a = Node(sim, "a", "10.0.0.1")
    b = Node(sim, "b", "10.0.0.2")
    with pytest.raises(ValueError):
        a.send_via(b, make_packet())


# ----------------------------------------------------------------------
# Forwarding table / router
# ----------------------------------------------------------------------
def test_lpm_prefers_longest_prefix():
    sim = Simulator()
    coarse = Node(sim, "coarse")
    fine = Node(sim, "fine")
    table = ForwardingTable()
    table.add(Prefix("10.0.0.0/8"), coarse)
    table.add(Prefix("10.1.0.0/16"), fine)
    assert table.lookup(ip("10.1.2.3")) is fine
    assert table.lookup(ip("10.2.2.3")) is coarse


def test_lpm_default_route():
    sim = Simulator()
    gateway = Node(sim, "gw")
    table = ForwardingTable()
    table.set_default(gateway)
    assert table.lookup(ip("99.99.99.99")) is gateway


def test_lpm_no_match_returns_none():
    table = ForwardingTable()
    assert table.lookup(ip("1.2.3.4")) is None


def test_lpm_host_route_wins_over_prefix():
    sim = Simulator()
    subnet_hop = Node(sim, "subnet")
    host_hop = Node(sim, "host")
    table = ForwardingTable()
    table.add(Prefix("10.0.0.0/24"), subnet_hop)
    table.add_host(ip("10.0.0.7"), host_hop)
    assert table.lookup(ip("10.0.0.7")) is host_hop
    assert table.lookup(ip("10.0.0.8")) is subnet_hop


def test_lpm_remove_route():
    sim = Simulator()
    hop = Node(sim, "hop")
    table = ForwardingTable()
    prefix = Prefix("10.0.0.0/24")
    table.add(prefix, hop)
    assert len(table) == 1
    table.remove(prefix)
    assert table.lookup(ip("10.0.0.1")) is None


def test_router_forwards_along_chain():
    sim = Simulator()
    network = Network(sim)
    src = network.host("src")
    r1 = network.router("r1")
    r2 = network.router("r2")
    dst = network.host("dst")
    network.connect(src, r1)
    network.connect(r1, r2)
    network.connect(r2, dst)
    network.install_routes()

    received = []
    dst.on_default(lambda packet, link: received.append(packet))
    src.send_via(r1, make_packet(src=str(src.address), dst=str(dst.address)))
    sim.run()
    assert len(received) == 1
    assert r1.forwarded_count == 1
    assert r2.forwarded_count == 1


def test_router_drops_on_ttl_expiry():
    sim = Simulator()
    network = Network(sim)
    src = network.host("src")
    r1 = network.router("r1")
    dst = network.host("dst")
    network.connect(src, r1)
    network.connect(r1, dst)
    network.install_routes()
    received = []
    dst.on_default(lambda packet, link: received.append(packet))

    src.send_via(r1, make_packet(src=str(src.address), dst=str(dst.address), ttl=1))
    sim.run()
    assert received == []
    assert r1.dropped_ttl == 1


def test_router_counts_unroutable():
    sim = Simulator()
    router = Router(sim, "r", "10.0.0.1")
    router.receive(make_packet(dst="99.0.0.1"))
    assert router.dropped_no_route == 1


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------
def test_star_topology_connects_all_leaves():
    sim = Simulator()
    network = star_topology(sim, leaf_count=3)
    assert len(network.nodes) == 4
    center = network["gw"]
    assert len(center.links) == 3


def test_binary_tree_topology_structure():
    sim = Simulator()
    network = binary_tree_topology(sim, depth=3)
    assert len(network.nodes) == 7  # 1 + 2 + 4
    root = network["root"]
    assert len(root.links) == 2
    leaf = network["root.l.l"]
    assert len(leaf.links) == 1


def test_tree_routing_end_to_end():
    sim = Simulator()
    network = binary_tree_topology(sim, depth=3, delay=0.002)
    left = network["root.l.l"]
    right = network["root.r.r"]
    received = []
    right.on_default(lambda packet, link: received.append(sim.now))
    left.receive(make_packet(src=str(left.address), dst=str(right.address)))
    sim.run()
    assert len(received) == 1
    # Four hops of 2 ms each plus serialization.
    assert received[0] >= 0.008


def test_path_delay_computation():
    sim = Simulator()
    network = binary_tree_topology(sim, depth=3, delay=0.002)
    assert network.path_delay("root.l.l", "root.r.r") == pytest.approx(0.008)
    assert network.path_delay("root", "root.l") == pytest.approx(0.002)


def test_duplicate_node_name_rejected():
    sim = Simulator()
    network = Network(sim)
    network.host("a")
    with pytest.raises(ValueError):
        network.host("a")


def test_find_node_owning():
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    assert network.find_node_owning(a.address) is a
    assert network.find_node_owning("1.2.3.4") is None
