"""Mobile IP lifecycle edge cases: renewal, deregistration, solicitation
and advertisement sequencing."""

import pytest

from repro.mobileip import (
    ForeignAgent,
    HomeAgent,
    MobileIPNode,
    install_home_prefix_routes,
    messages,
)
from repro.net import Network, Packet
from repro.sim import Simulator


def build_world(advertisement_interval=1.0):
    sim = Simulator()
    network = Network(sim)
    core = network.router("core")
    ha = HomeAgent(sim, "ha", network.allocator.allocate(), "10.99.0.0/16")
    fa1 = ForeignAgent(
        sim, "fa1", network.allocator.allocate(),
        advertisement_interval=advertisement_interval,
    )
    fa2 = ForeignAgent(
        sim, "fa2", network.allocator.allocate(),
        advertisement_interval=advertisement_interval,
    )
    for agent in (ha, fa1, fa2):
        network.add(agent)
    network.connect(ha, core, delay=0.01)
    network.connect(fa1, core, delay=0.01)
    network.connect(fa2, core, delay=0.01)
    network.install_routes()
    install_home_prefix_routes(network, ha)
    mn = MobileIPNode(
        sim, "mn", home_address="10.99.0.5", home_agent_address=ha.address
    )
    return sim, ha, fa1, fa2, mn


def test_registration_renews_before_expiry():
    sim, ha, fa1, fa2, mn = build_world()
    mn.registration_lifetime = 4.0
    fa1.attach_mobile(mn)
    sim.run(until=30.0)
    # Renewals kept the binding alive for the whole half minute.
    assert mn.is_registered
    assert ha.lookup_binding(mn.home_address) is not None
    assert ha.registrations_accepted >= 5


def test_renewal_uses_fresh_identifications():
    sim, ha, fa1, fa2, mn = build_world()
    mn.registration_lifetime = 3.0
    fa1.attach_mobile(mn)
    sim.run(until=20.0)
    assert ha.registrations_denied == 0


def test_home_agent_deregistration_on_zero_lifetime():
    sim, ha, fa1, fa2, mn = build_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    assert ha.lookup_binding(mn.home_address) is not None
    # Deregister with lifetime 0 (mobile returned home), directly at HA.
    request = messages.RegistrationRequest(
        home_address=mn.home_address,
        home_agent=ha.address,
        care_of_address=mn.home_address,
        lifetime=0.0,
        identification=10_000,
    )
    ha.receive(
        Packet(
            src=mn.home_address,
            dst=ha.address,
            size=messages.REGISTRATION_REQUEST_BYTES,
            protocol=messages.REGISTRATION_REQUEST,
            payload=request,
        )
    )
    sim.run(until=4.0)
    assert ha.lookup_binding(mn.home_address) is None


def test_solicitation_triggers_immediate_advertisement():
    sim, ha, fa1, fa2, mn = build_world(advertisement_interval=30.0)
    fa1.attach_mobile(mn)
    sim.run(until=1.0)
    advertisements = []
    original = mn._handle_advertisement

    def spy(packet, link):
        advertisements.append(sim.now)
        original(packet, link)

    mn.on_protocol(messages.AGENT_ADVERTISEMENT, spy)
    mn.send_via(
        fa1,
        Packet(
            src=mn.home_address,
            dst=fa1.address,
            size=messages.SOLICITATION_BYTES,
            protocol=messages.AGENT_SOLICITATION,
            payload=messages.AgentSolicitation(mn.home_address),
        ),
    )
    sim.run(until=2.0)
    # Far sooner than the 30 s beacon interval.
    assert advertisements and advertisements[0] < 1.5


def test_ha_max_lifetime_caps_registration():
    sim, ha, fa1, fa2, mn = build_world()
    ha.max_lifetime = 10.0
    mn.registration_lifetime = 1_000.0
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    binding = ha.lookup_binding(mn.home_address)
    assert binding is not None
    assert binding.lifetime == 10.0


def test_advertisement_sequence_increases():
    sim, ha, fa1, fa2, mn = build_world(advertisement_interval=0.5)
    sequences = []
    mn.on_protocol(
        messages.AGENT_ADVERTISEMENT,
        lambda packet, link: sequences.append(packet.payload.sequence),
    )
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    assert sequences == sorted(sequences)
    assert len(sequences) >= 5


def test_ha_notifies_previous_coa_on_move():
    sim, ha, fa1, fa2, mn = build_world()
    fa1.attach_mobile(mn)
    sim.run(until=3.0)
    notifies = []
    fa1.on_protocol(
        messages.BINDING_NOTIFY,
        lambda packet, link: notifies.append(packet.payload),
    )
    fa1.detach_mobile(mn)
    fa2.attach_mobile(mn)
    sim.run(until=8.0)
    assert len(notifies) == 1
    assert notifies[0].forward_to == fa2.address
