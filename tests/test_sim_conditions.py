"""Tests for AnyOf/AllOf condition events."""

import pytest

from repro.sim import Simulator


def test_all_of_waits_for_every_event():
    sim = Simulator()
    log = []

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(3.0, value="b")
        result = yield sim.all_of([a, b])
        log.append((sim.now, [result[a], result[b]]))

    sim.process(proc(sim))
    sim.run()
    assert log == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first_event():
    sim = Simulator()
    log = []

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        result = yield sim.any_of([fast, slow])
        log.append((sim.now, fast in result, slow in result))

    sim.process(proc(sim))
    sim.run()
    assert log == [(1.0, True, False)]


def test_any_of_value_mapping():
    sim = Simulator()
    got = {}

    def proc(sim):
        a = sim.timeout(2.0, value=10)
        result = yield sim.any_of([a])
        got.update(result.todict())

    sim.process(proc(sim))
    sim.run()
    assert list(got.values()) == [10]


def test_empty_all_of_triggers_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.all_of([])
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [0.0]


def test_empty_any_of_triggers_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.any_of([])
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [0.0]


def test_condition_over_already_processed_events():
    sim = Simulator()
    log = []

    def proc(sim):
        early = sim.timeout(1.0, value="e")
        yield sim.timeout(5.0)
        result = yield sim.all_of([early])
        log.append((sim.now, result[early]))

    sim.process(proc(sim))
    sim.run()
    assert log == [(5.0, "e")]


def test_condition_failure_propagates():
    sim = Simulator()
    event = sim.event()
    caught = []

    def proc(sim, event):
        try:
            yield sim.all_of([event, sim.timeout(10.0)])
        except RuntimeError as error:
            caught.append(str(error))

    sim.process(proc(sim, event))
    sim.schedule(1.0, event.fail, RuntimeError("sub-event died"))
    sim.run()
    assert caught == ["sub-event died"]


def test_condition_rejects_foreign_events():
    sim_a = Simulator()
    sim_b = Simulator()
    event = sim_b.event()
    with pytest.raises(ValueError):
        sim_a.all_of([event])


def test_timeout_race_any_of_used_as_timeout_guard():
    """The idiom used throughout the protocol code: wait-with-timeout."""
    sim = Simulator()
    outcome = []

    def proc(sim, reply):
        timeout = sim.timeout(5.0)
        result = yield sim.any_of([reply, timeout])
        outcome.append("reply" if reply in result else "timeout")

    # Reply never comes: the guard must fire.
    sim.process(proc(sim, sim.event()))
    sim.run()
    assert outcome == ["timeout"]
