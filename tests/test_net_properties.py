"""Property-based tests for the network substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IPAddress, Network, Packet, Prefix, ip
from repro.net.router import ForwardingTable
from repro.net.node import Node
from repro.sim import Simulator

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


@given(addresses)
def test_address_string_roundtrip(value):
    address = IPAddress(value)
    assert int(IPAddress(str(address))) == value


@given(addresses, prefix_lengths)
def test_prefix_always_contains_its_network(value, length):
    prefix = Prefix(IPAddress(value), length)
    assert prefix.network in prefix


@given(addresses, prefix_lengths, addresses)
def test_prefix_membership_matches_mask_arithmetic(network, length, probe):
    prefix = Prefix(IPAddress(network), length)
    mask = ((1 << 32) - 1) << (32 - length) if length else 0
    mask &= (1 << 32) - 1
    expected = (probe & mask) == (network & mask)
    assert (IPAddress(probe) in prefix) == expected


@settings(max_examples=50, deadline=None)
@given(
    entries=st.lists(
        st.tuples(addresses, prefix_lengths, st.integers(0, 9)),
        min_size=1,
        max_size=25,
    ),
    probe=addresses,
)
def test_lpm_matches_bruteforce_reference(entries, probe):
    """The bucketed LPM must agree with a naive longest-match scan."""
    sim = Simulator()
    hops = [Node(sim, f"hop{i}") for i in range(10)]
    table = ForwardingTable()
    reference: dict[tuple[int, int], Node] = {}
    for network, length, hop_index in entries:
        prefix = Prefix(IPAddress(network), length)
        table.add(prefix, hops[hop_index])
        reference[(int(prefix.network), length)] = hops[hop_index]

    # Naive reference: longest prefix containing the probe; ties by
    # insertion order are impossible since (network, length) is unique.
    best = None
    best_length = -1
    for (network, length), hop in reference.items():
        mask = ((1 << 32) - 1) << (32 - length) if length else 0
        mask &= (1 << 32) - 1
        if (probe & mask) == network and length > best_length:
            best, best_length = hop, length
    assert table.lookup(IPAddress(probe)) is best


@settings(max_examples=30, deadline=None)
@given(
    packet_count=st.integers(1, 30),
    queue_limit=st.integers(1, 10),
    size=st.integers(64, 1500),
)
def test_link_conserves_packets(packet_count, queue_limit, size):
    """Every packet offered to a link is either delivered or counted as
    dropped — none vanish."""
    sim = Simulator()
    network = Network(sim)
    a = network.host("a")
    b = network.host("b")
    forward, _ = network.connect(a, b, bandwidth=1e6, queue_limit=queue_limit)
    received = []
    b.on_default(lambda packet, link: received.append(packet))
    for _ in range(packet_count):
        a.send_via(b, Packet(src=a.address, dst=b.address, size=size))
    sim.run()
    assert forward.stats.delivered == len(received)
    assert forward.stats.delivered + forward.stats.dropped_queue == packet_count


@settings(max_examples=20, deadline=None)
@given(
    depth=st.integers(2, 4),
    packet_count=st.integers(1, 10),
)
def test_tree_routing_delivers_everything_under_capacity(depth, packet_count):
    """In an uncongested tree, every routed packet arrives exactly once."""
    from repro.net import binary_tree_topology

    sim = Simulator()
    network = binary_tree_topology(sim, depth=depth)
    leaves = [
        node for node in network.nodes.values() if len(node.links) == 1
    ] or list(network.nodes.values())
    src, dst = leaves[0], leaves[-1]
    if src is dst:
        return
    received = []
    dst.on_default(lambda packet, link: received.append(packet.uid))
    for _ in range(packet_count):
        src.receive(Packet(src=src.address, dst=dst.address, size=500))
    sim.run()
    assert len(received) == packet_count
    assert len(set(received)) == packet_count
