"""Micro-regression pins for the kernel fast path.

The PR 9 speed work changed the hottest structures in the simulator —
pooled ``_Callback`` events behind :meth:`Simulator.call_later`, an
inlined dispatch loop in :meth:`Simulator.run`, ``__slots__`` on
:class:`~repro.net.packet.Packet` and the monitor probes.  None of
that may move a single event: this file pins the ordering contract
(time, then priority, then scheduling order) across both scheduling
APIs, the pool's recycling semantics, and the exact totals the leaner
Monitor accounting produces.  The 16 experiment-table goldens pin the
same contract end-to-end; these tests localize a violation.
"""

import pytest

from repro.net.packet import Packet
from repro.sim import Simulator
from repro.sim.events import NORMAL, URGENT, Timeout
from repro.sim.kernel import _Callback
from repro.sim.monitor import Monitor


# ----------------------------------------------------------------------
# Ordering: time, then priority, then event id
# ----------------------------------------------------------------------
def test_urgent_events_preempt_normal_events_at_the_same_time():
    sim = Simulator()
    seen = []
    Timeout(sim, 1.0).callbacks.append(lambda e: seen.append("normal-first"))
    urgent = sim.event()
    urgent.callbacks.append(lambda e: seen.append("urgent"))
    sim._enqueue(urgent, delay=1.0, priority=URGENT)
    Timeout(sim, 1.0).callbacks.append(lambda e: seen.append("normal-second"))
    sim.run()
    assert seen == ["urgent", "normal-first", "normal-second"]
    assert URGENT < NORMAL  # the heap invariant the test relies on


def test_same_time_same_priority_fires_in_scheduling_order():
    sim = Simulator()
    seen = []
    for tag in range(8):
        sim.schedule(2.0, seen.append, tag)
    sim.run()
    assert seen == list(range(8))


def test_call_later_and_schedule_interleave_in_creation_order():
    """``call_later`` consumes exactly one event id per call, so mixing
    the fast path with ``schedule`` at one timestamp keeps creation
    order — the determinism contract that let links and channels move
    to the pooled path without disturbing a single golden byte."""
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "a")
    sim.schedule(1.0, seen.append, "b")
    sim.call_later(1.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "d")
    sim.run()
    assert seen == ["a", "b", "c", "d"]


def test_call_later_rejects_negative_delay_and_passes_args():
    sim = Simulator()
    with pytest.raises(ValueError, match="negative delay"):
        sim.call_later(-0.1, lambda: None)
    seen = []
    sim.call_later(0.5, lambda *args: seen.append(args), 1, "two", 3.0)
    sim.run()
    assert seen == [(1, "two", 3.0)]
    assert sim.now == 0.5


def test_step_processes_pooled_callbacks_like_run_does():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "stepped")
    sim.step()
    assert seen == ["stepped"] and sim.now == 1.0


def test_run_until_includes_pooled_callbacks_at_the_stop_time():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "at-stop")
    sim.call_later(1.0 + 1e-9, seen.append, "after-stop")
    sim.run(until=1.0)
    assert seen == ["at-stop"]
    assert sim.now == 1.0


# ----------------------------------------------------------------------
# The callback pool
# ----------------------------------------------------------------------
def test_fired_callbacks_are_recycled_through_the_pool():
    sim = Simulator()
    assert sim._callback_pool == []
    sim.call_later(1.0, lambda: None)
    sim.run()
    assert len(sim._callback_pool) == 1
    recycled = sim._callback_pool[0]
    # Recycled entries drop their payload (no leaked references)...
    assert recycled.fn is None and recycled.args is None
    # ...and the next call_later reuses the exact same object.
    sim.call_later(1.0, lambda: None)
    assert sim._callback_pool == []
    assert sim._queue[-1][3] is recycled
    sim.run()
    assert sim._callback_pool == [recycled]


def test_pool_size_tracks_peak_in_flight_not_total_calls():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 100:
            sim.call_later(1.0, chain)  # one in flight at a time

    sim.call_later(1.0, chain)
    sim.run()
    assert len(fired) == 100
    assert len(sim._callback_pool) == 1  # 100 calls, one pooled object
    for _ in range(10):
        sim.call_later(1.0, lambda: None)  # ten in flight at once
    sim.run()
    assert len(sim._callback_pool) == 10


def test_callbacks_scheduled_from_a_callback_keep_ordering():
    sim = Simulator()
    seen = []

    def reschedule():
        seen.append(("outer", sim.now))
        sim.call_later(0.0, seen.append, ("inner", sim.now))

    sim.call_later(1.0, reschedule)
    sim.call_later(1.0, seen.append, ("sibling", 1.0))
    sim.run()
    # The re-scheduled callback lands after the already-queued sibling
    # at the same timestamp (fresh event id), exactly like schedule().
    assert seen == [("outer", 1.0), ("sibling", 1.0), ("inner", 1.0)]


def test_pooled_callback_type_is_internal_only_and_slotted():
    sim = Simulator()
    assert sim.call_later(0.0, lambda: None) is None  # no waitable event
    entry = _Callback.__new__(_Callback)
    with pytest.raises(AttributeError):
        entry.not_a_slot = 1  # Event + _Callback are fully __slots__-ed


# ----------------------------------------------------------------------
# Monitor accounting after the __slots__ / single-probe changes
# ----------------------------------------------------------------------
def test_monitor_totals_are_pinned():
    sim = Simulator()
    monitor = Monitor(sim)
    for _ in range(3):
        monitor.count("handoffs")
    monitor.count("handoffs", 2)
    monitor.record("delay", 1.0, 10.0)
    monitor.record("delay", 2.0, 30.0)
    gauge = monitor.gauge("queue")
    Timeout(sim, 1.0).callbacks.append(lambda e: gauge.set(4.0))
    Timeout(sim, 3.0).callbacks.append(lambda e: gauge.set(0.0))
    sim.run(until=4.0)
    assert monitor.get_count("handoffs") == 5
    assert monitor.get_count("never-touched") == 0
    series = monitor.timeseries("delay")
    assert (series.times, series.values) == ([1.0, 2.0], [10.0, 30.0])
    snapshot = monitor.snapshot()
    assert snapshot["count.handoffs"] == 5
    assert snapshot["series.delay.mean"] == 20.0
    assert snapshot["gauge.queue"] == pytest.approx(4.0 * 2.0 / 4.0)


def test_monitor_lookup_methods_return_the_same_object():
    monitor = Monitor()
    assert monitor.counter("x") is monitor.counter("x")
    assert monitor.timeseries("y") is monitor.timeseries("y")
    monitor.count("x")
    assert monitor.counter("x").value == 1
    monitor.record("y", 0.0, 1.0)
    assert len(monitor.timeseries("y")) == 1


def test_monitor_and_packet_carry_no_instance_dict():
    """``__slots__`` actually took: the high-churn objects allocate no
    per-instance ``__dict__`` (the point of the memory work), and
    Packet's field coercion still runs."""
    monitor = Monitor()
    with pytest.raises(AttributeError):
        monitor.not_a_slot = 1
    packet = Packet(src="10.0.0.1", dst="10.0.0.2", size=100)
    with pytest.raises(AttributeError):
        packet.not_a_field = 1
    assert int(packet.src) and int(packet.dst)  # str coerced to IPAddress
    copy = packet.copy()
    assert copy.src == packet.src and copy is not packet


# ----------------------------------------------------------------------
# Run-loop hardening: re-entrancy guard and the event counter
# ----------------------------------------------------------------------
def test_run_is_not_reentrant_from_a_dispatched_callback():
    """A nested run() would drain events past the outer until bound and
    rewind the clock on return; the kernel refuses it loudly instead."""
    sim = Simulator()
    caught = []

    def nested():
        with pytest.raises(RuntimeError, match="not re-entrant"):
            sim.run(until=5.0)
        caught.append(sim.now)

    sim.call_later(1.0, nested)
    sim.call_later(2.0, lambda: None)
    sim.run(until=3.0)
    assert caught == [1.0]
    assert sim.now == 3.0  # the outer bounded run finished normally


def test_run_guard_resets_after_an_escaping_exception():
    sim = Simulator()

    def boom():
        raise ValueError("event body failed")

    sim.call_later(1.0, boom)
    with pytest.raises(ValueError, match="event body failed"):
        sim.run()
    # The finally path cleared the flag: the simulator is reusable.
    sim.call_later(1.0, lambda: None)
    sim.run()
    assert not sim._running


def test_events_processed_counts_run_and_step_and_survives_errors():
    sim = Simulator()
    for index in range(5):
        sim.call_later(float(index), lambda: None)
    sim.step()
    assert sim.events_processed == 1
    sim.run()
    assert sim.events_processed == 5

    def boom():
        raise ValueError("late failure")

    sim.call_later(1.0, lambda: None)
    sim.call_later(2.0, boom)
    with pytest.raises(ValueError):
        sim.run()
    # Both the clean event and the failing one were flushed (finally).
    assert sim.events_processed == 7


def test_pool_recycling_survives_reentrant_scheduling_fuzz():
    """schedule()/call_later() invoked from inside dispatched callbacks
    (the inlined run loop) must keep the pool coherent: every scheduled
    body fires exactly once, recycled entries are distinct objects, and
    nothing in the pool still holds a payload."""
    import random

    rng = random.Random(1234)
    sim = Simulator()
    fired = []
    budget = [400]

    def body(tag):
        fired.append(tag)
        if budget[0] <= 0:
            return
        for _ in range(rng.randint(0, 3)):
            budget[0] -= 1
            child = (tag, budget[0])
            if rng.random() < 0.5:
                sim.call_later(rng.choice((0.0, 0.5, 1.0)), body, child)
            else:
                sim.schedule(sim.now + rng.choice((0.0, 0.5, 1.0)),
                             body, child)

    for index in range(10):
        sim.call_later(float(index % 3), body, ("root", index))
    sim.run()
    assert len(fired) == len(set(fired))  # every body fired exactly once
    assert len(fired) >= 10
    pool = sim._callback_pool
    assert len(pool) == len({id(entry) for entry in pool})
    assert all(entry.fn is None and entry.args is None for entry in pool)
    # The pool never exceeds the peak in-flight count (no unbounded growth).
    assert len(pool) <= len(fired)

    # Determinism spot check: the same fuzz replays identically.
    rng2 = random.Random(1234)
    sim2 = Simulator()
    fired2 = []
    budget2 = [400]

    def body2(tag):
        fired2.append(tag)
        if budget2[0] <= 0:
            return
        for _ in range(rng2.randint(0, 3)):
            budget2[0] -= 1
            child = (tag, budget2[0])
            if rng2.random() < 0.5:
                sim2.call_later(rng2.choice((0.0, 0.5, 1.0)), body2, child)
            else:
                sim2.schedule(sim2.now + rng2.choice((0.0, 0.5, 1.0)),
                              body2, child)

    for index in range(10):
        sim2.call_later(float(index % 3), body2, ("root", index))
    sim2.run()
    assert fired2 == fired
