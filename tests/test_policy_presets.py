"""S4: ablation policies as :class:`PolicyConfig` presets, and reasons.

The E9 tier-policy ablation predates the policy package: it
parametrizes over the legacy ``Always*Policy`` / ``TierSelectionPolicy``
classes.  These tests pin that re-expressing each of those classes as a
``PolicyConfig`` preset (built through
:meth:`TierDecider.from_config <repro.policy.decider.TierDecider.from_config>`)
produces a byte-identical E9 table — the explainable decider is the
same policy, not a near-miss — and that every decision an instrumented
world emits carries at least one machine-readable reason.
"""

import pytest

from repro.policy import PRESETS, PolicyConfig, TierDecider


# Small-but-nonempty E9 parameters: enough motion for handoffs under
# every policy, seconds of wall clock instead of the default minutes.
_E9_PARAMS = dict(seeds=(1, 2), duration=60.0, vehicles=2, pedestrians=2)


def test_e9_preset_policies_reproduce_legacy_table(monkeypatch):
    """PRESETS-built deciders replicate the legacy classes byte-for-byte."""
    from repro.experiments import ablations

    baseline = ablations.experiment_e9(**_E9_PARAMS)

    monkeypatch.setattr(
        ablations, "TierSelectionPolicy",
        lambda: TierDecider.from_config(PRESETS["speed-aware"]),
    )
    monkeypatch.setattr(
        ablations, "AlwaysStrongestPolicy",
        lambda: TierDecider.from_config(PRESETS["always-strongest"]),
    )
    monkeypatch.setattr(
        ablations, "AlwaysMicroPolicy",
        lambda: TierDecider.from_config(PRESETS["always-micro"]),
    )
    via_presets = ablations.experiment_e9(**_E9_PARAMS)

    assert via_presets.text == baseline.text


@pytest.mark.parametrize("mode", sorted(PRESETS))
def test_presets_match_their_modes(mode):
    preset = PRESETS[mode]
    assert preset.mode == mode
    decider = TierDecider.from_config(preset)
    assert decider.mode == mode
    # Legacy threshold defaults: presets reproduce historical behavior.
    assert decider.speed_threshold == 15.0
    assert decider.demand_threshold == 200e3


def test_every_emitted_decision_carries_a_reason():
    """No decision or fallback leaves the trace without an explanation."""
    from repro.scenarios import get_scenario, run_scenario_trace

    spec = get_scenario("city-rush-hour")
    _metrics, trace = run_scenario_trace(spec, spec.seeds[0])
    assert trace is not None
    assert len(trace.records) > 0  # the run produced decisions at all
    for record in trace.records:
        assert len(record.reasons) >= 1, record
        assert all(isinstance(reason, str) and reason for reason in record.reasons)


def test_every_decision_in_contention_run_carries_a_reason():
    """Same invariant under per-cell air-interface contention."""
    from repro.scenarios import get_scenario, run_scenario_trace

    spec = get_scenario("campus-air")
    assert spec.channels_enabled()
    _metrics, trace = run_scenario_trace(spec.smoke(), spec.seeds[0])
    assert trace is not None
    for record in trace.records:
        assert len(record.reasons) >= 1, record


def test_default_config_is_default_and_presets_are_not_unless_speed_aware():
    assert PolicyConfig().is_default()
    assert PRESETS["speed-aware"].is_default()
    for mode in ("always-strongest", "always-micro", "always-macro"):
        assert not PRESETS[mode].is_default()
