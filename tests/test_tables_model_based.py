"""Model-based property test: the TablePair against a reference dict.

Hypothesis drives random sequences of store/delete/advance operations
and checks the real implementation against an obviously correct model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multitier import TablePair
from repro.net import Node, ip
from repro.sim import Simulator

LIFETIME = 10.0

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("store"),
            st.integers(0, 3),       # which mobile
            st.booleans(),           # serving tier is macro?
        ),
        st.tuples(st.just("delete"), st.integers(0, 3), st.none()),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.1, max_value=8.0),
            st.none(),
        ),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ops=operations)
def test_tablepair_matches_reference_model(ops):
    sim = Simulator()
    pair = TablePair(sim, record_lifetime=LIFETIME, has_macro_table=True)
    via = Node(sim, "child")
    # Reference: mobile -> (is_macro, expiry).
    model: dict[int, tuple[bool, float]] = {}

    for op, arg, extra in ops:
        if op == "store":
            pair.store(ip(f"10.0.0.{arg + 1}"), via, serving_tier_is_macro=extra)
            model[arg] = (extra, sim.now + LIFETIME)
        elif op == "delete":
            pair.delete(ip(f"10.0.0.{arg + 1}"))
            model.pop(arg, None)
        else:  # advance
            sim.timeout(arg)
            sim.run()

        # Invariants after every operation:
        for mobile in range(4):
            address = ip(f"10.0.0.{mobile + 1}")
            expected = model.get(mobile)
            expected_live = expected is not None and expected[1] > sim.now
            record, probes = pair.lookup(address)
            if expected_live:
                assert record is not None, (mobile, sim.now, expected)
                is_macro = expected[0]
                # The paper's lookup order: micro probes cost 1, macro 2.
                assert probes == (2 if is_macro else 1)
            else:
                assert record is None
                assert probes == 2  # both tables probed on a miss
        # Never two live records for the same mobile.
        for mobile in range(4):
            address = ip(f"10.0.0.{mobile + 1}")
            live = int(address in pair.micro_table) + int(
                pair.macro_table is not None and address in pair.macro_table
            )
            assert live <= 1
