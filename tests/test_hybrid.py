"""The hybrid fluid/discrete layer: model, driver, channel claims.

Bottom-up coverage of :mod:`repro.fluid` — the overlap quadrature, the
per-cell analytic state, the config validation, the background claims
on :class:`~repro.radio.channel.SharedChannel`, the refresh driver —
ending at the ROADMAP acceptance check: a small all-discrete scenario
and the same scenario with part of its population converted to fluid
background must agree on tracked-cohort metrics within confidence
bounds.
"""

import math

import pytest

from repro.fluid import (
    CellBackgroundState,
    FluidBackground,
    FluidDriver,
    cell_background_state,
    disc_rect_overlap_fraction,
    fluid_channel_pairs,
    install_fluid_background,
)
from repro.fluid.config import HANDOFF_SIGNALLING_BYTES
from repro.metrics.stats import mean_confidence
from repro.radio.cells import Cell, Tier
from repro.radio.channel import DOWNLINK, UPLINK, SharedChannel
from repro.radio.geometry import Point, Rectangle
from repro.scenarios import get_scenario, run_scenario_spec
from repro.scenarios.builder import build_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim import Simulator

RECT = Rectangle(0.0, 0.0, 1000.0, 1000.0)


def _cell(radius=200.0, channels=8, center=(500.0, 500.0)):
    return Cell(
        name="c",
        center=Point(*center),
        tier=Tier.MICRO,
        radius=radius,
        channels=channels,
    )


# ----------------------------------------------------------------------
# Overlap quadrature
# ----------------------------------------------------------------------
def test_overlap_covering_disc_is_one_and_disjoint_disc_is_zero():
    assert disc_rect_overlap_fraction(Point(500, 500), 1e4, RECT) == 1.0
    assert disc_rect_overlap_fraction(Point(-5000, -5000), 100.0, RECT) == 0.0


def test_overlap_of_interior_disc_matches_area_ratio():
    exact = math.pi * 200.0**2 / (1000.0 * 1000.0)
    default = disc_rect_overlap_fraction(Point(500, 500), 200.0, RECT)
    assert abs(default - exact) < 0.03 * exact
    # And the quadrature converges: a finer grid tightens the answer.
    fine = disc_rect_overlap_fraction(Point(500, 500), 200.0, RECT, resolution=512)
    assert abs(fine - exact) < 0.005 * exact


def test_overlap_is_deterministic_and_rejects_bad_radius():
    args = (Point(420, 330), 150.0, RECT)
    assert disc_rect_overlap_fraction(*args) == disc_rect_overlap_fraction(*args)
    with pytest.raises(ValueError, match="radius"):
        disc_rect_overlap_fraction(Point(0, 0), 0.0, RECT)


# ----------------------------------------------------------------------
# Per-cell analytic state
# ----------------------------------------------------------------------
def test_cell_background_state_composes_erlang_and_fluid_flow():
    config = FluidBackground(
        population=1000, mean_speed=2.0, activity=0.1, per_mobile_bps=32e3
    )
    cell = _cell()
    state = cell_background_state(cell, config, RECT)
    assert isinstance(state, CellBackgroundState)
    overlap = disc_rect_overlap_fraction(cell.center, cell.radius, RECT)
    assert state.occupants == pytest.approx(1000 * overlap)
    assert state.offered_erlangs == pytest.approx(state.occupants * 0.1)
    assert 0.0 <= state.blocking <= 1.0
    assert state.carried_erlangs == pytest.approx(
        state.offered_erlangs * (1.0 - state.blocking)
    )
    # Crossing rate: 2 v / (pi r) per occupant.
    per_occupant = 2.0 * 2.0 / (math.pi * cell.radius)
    assert state.crossing_rate == pytest.approx(state.occupants * per_occupant)
    signalling = state.crossing_rate * HANDOFF_SIGNALLING_BYTES * 8.0
    assert state.downlink_bps == pytest.approx(
        state.carried_erlangs * 32e3 + signalling
    )
    assert state.uplink_bps == pytest.approx(
        state.carried_erlangs * 32e3 * config.uplink_fraction + signalling
    )


def test_cell_background_state_offset_moves_the_density():
    """The drift offset displaces the density frame: push it far enough
    and the cell sees no background at all."""
    config = FluidBackground(population=500)
    near = cell_background_state(_cell(), config, RECT)
    far = cell_background_state(_cell(), config, RECT, offset=(1e6, 0.0))
    assert near.occupants > 0
    assert far.occupants == 0.0
    assert far.downlink_bps == 0.0


def test_idle_background_still_costs_signalling():
    """activity=0 means no sessions, but the population still crosses
    cell boundaries — location management load, as in the paper."""
    state = cell_background_state(
        _cell(), FluidBackground(population=500, activity=0.0), RECT
    )
    assert state.offered_erlangs == 0.0
    assert state.blocking == 0.0
    assert state.crossing_rate > 0
    assert state.downlink_bps == pytest.approx(
        state.crossing_rate * HANDOFF_SIGNALLING_BYTES * 8.0
    )


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_fluid_background_validates_eagerly():
    with pytest.raises(ValueError, match="population"):
        FluidBackground(population=-1)
    with pytest.raises(ValueError, match="activity"):
        FluidBackground(population=10, activity=1.5)
    with pytest.raises(ValueError, match="drift"):
        FluidBackground(population=10, drift=(1.0, 2.0, 3.0))
    with pytest.raises(ValueError, match="max_cell_load"):
        FluidBackground(population=10, max_cell_load=0.99)
    assert not FluidBackground(population=0).enabled
    assert FluidBackground(population=1).enabled


def test_spec_fluid_block_requires_channels_and_coerces_mappings():
    base = dict(
        name="hybrid-val",
        description="x",
        population=2,
        duration=4.0,
        mobility_mix={"waypoint": 1.0},
        traffic_mix={"cbr-voice": 1.0},
    )
    with pytest.raises(ValueError, match="shared\\s+channels"):
        ScenarioSpec(**base, fluid={"population": 100})
    spec = ScenarioSpec(
        **base, macro_channel_bandwidth=2e6, fluid={"population": 100}
    )
    assert isinstance(spec.fluid, FluidBackground)
    assert spec.fluid.population == 100
    # An empty block needs no channels — it is the legacy path.
    assert ScenarioSpec(**base, fluid={"population": 0}).fluid.enabled is False


# ----------------------------------------------------------------------
# SharedChannel background claims
# ----------------------------------------------------------------------
def test_set_background_stretches_airtime_and_restores_exactly():
    from repro.net.packet import Packet

    sim = Simulator()
    channel = SharedChannel(sim, "air-t", downlink_bps=1e6, uplink_bps=5e5)
    packet = Packet(src="10.0.0.1", dst="10.0.0.2", size=1000)
    free = channel.airtime(DOWNLINK, packet)
    channel.set_background(DOWNLINK, 5e5)
    assert channel.airtime(DOWNLINK, packet) == pytest.approx(2.0 * free)
    # Restoring to zero is exact float identity — the fluid-off
    # byte-identity contract at the channel level.
    channel.set_background(DOWNLINK, 0.0)
    assert channel.airtime(DOWNLINK, packet) == free


def test_set_background_clamps_to_max_fraction_and_validates():
    sim = Simulator()
    channel = SharedChannel(sim, "air-t", downlink_bps=1e6, uplink_bps=5e5)
    applied = channel.set_background(DOWNLINK, 1e9, max_fraction=0.9)
    assert applied == pytest.approx(0.9e6)
    assert channel.set_background(UPLINK, -5.0) == 0.0
    with pytest.raises(ValueError):
        channel.set_background("sideways", 1.0)


def test_background_claim_counts_against_admission():
    sim = Simulator()
    channel = SharedChannel(
        sim, "air-t", downlink_bps=1e6, uplink_bps=5e5, admission_factor=1.0
    )
    assert channel.admit(1, 600e3)
    channel.set_background(DOWNLINK, 500e3)
    assert not channel.admit(1, 600e3)
    assert channel.admit(1, 400e3)


# ----------------------------------------------------------------------
# FluidDriver
# ----------------------------------------------------------------------
def _driver(config, cells=1):
    sim = Simulator()
    pairs = [
        (
            _cell(center=(300.0 + 200.0 * index, 500.0)),
            SharedChannel(sim, f"air-{index}", 1e6, 5e5),
        )
        for index in range(cells)
    ]
    return sim, FluidDriver(sim, config, pairs, RECT)


def test_driver_refreshes_periodically_and_reports_metrics():
    sim, driver = _driver(
        FluidBackground(population=2000, update_period=1.0), cells=2
    )
    sim.run(until=4.5)
    assert driver.updates == 5  # t = 0, 1, 2, 3, 4
    for _cell_, channel in driver.pairs:
        assert channel.background[DOWNLINK] > 0
        assert channel.background[UPLINK] > 0
    metrics = driver.metrics()
    assert metrics["fluid.background_population"] == 2000.0
    assert metrics["fluid.updates"] == 5.0
    assert 0.0 < metrics["fluid.peak_cell_load"] <= 0.9
    assert 0.0 <= metrics["fluid.mean_blocking"] <= 1.0
    assert metrics["fluid.handoff_rate"] > 0
    assert all(isinstance(v, float) for v in metrics.values())


def test_driver_drift_makes_claims_time_varying():
    static_sim, static_driver = _driver(FluidBackground(population=2000))
    static_sim.run(until=5.0)
    drift_sim, drift_driver = _driver(
        FluidBackground(population=2000, drift=(150.0, 0.0))
    )
    first_claim = None

    def snapshot():
        nonlocal first_claim
        channel = drift_driver.pairs[0][1]
        if first_claim is None:
            first_claim = channel.background[DOWNLINK]

    drift_sim.call_later(0.5, snapshot)
    drift_sim.run(until=5.0)
    late_claim = drift_driver.pairs[0][1].background[DOWNLINK]
    # Static density: claims settle and stay put (cached evaluation).
    static_channel = static_driver.pairs[0][1]
    assert static_driver._static_states is not None
    assert static_channel.background[DOWNLINK] > 0
    # Drifting density: the same cell's claim changes over time.
    assert first_claim is not None and late_claim != first_claim


def test_driver_rejects_empty_background_or_no_cells():
    sim = Simulator()
    with pytest.raises(ValueError, match="population"):
        FluidDriver(sim, FluidBackground(population=0), [], RECT)
    with pytest.raises(ValueError, match="pair"):
        FluidDriver(sim, FluidBackground(population=10), [], RECT)


def test_install_fluid_background_is_a_noop_for_legacy_specs():
    spec = ScenarioSpec(
        name="hybrid-noop",
        description="x",
        population=2,
        duration=4.0,
        mobility_mix={"waypoint": 1.0},
        traffic_mix={"cbr-voice": 1.0},
        macro_channel_bandwidth=2e6,
    )
    sim = Simulator()
    assert install_fluid_background(sim, spec, [], RECT) is None
    assert install_fluid_background(
        sim, spec.replace(fluid={"population": 0}), [], RECT
    ) is None
    assert sim.peek() == float("inf")  # nothing scheduled


def test_fluid_channel_pairs_skips_stations_without_channels():
    class Station:
        def __init__(self, cell, channel):
            self.cell = cell
            self.shared_channel = channel

    cell = _cell()
    channel = SharedChannel(Simulator(), "air", 1e6, 5e5)
    pairs = fluid_channel_pairs([Station(cell, channel), Station(cell, None)])
    assert pairs == [(cell, channel)]


# ----------------------------------------------------------------------
# The metro-100k catalog scenario
# ----------------------------------------------------------------------
def test_metro_catalog_scenario_keeps_its_background_in_smoke_mode():
    spec = get_scenario("metro-100k")
    assert spec.fluid is not None and spec.fluid.population == 100_000
    assert spec.channels_enabled()
    smoke = spec.smoke()
    # smoke() shrinks the tracked cohort, never the background — the
    # CI smoke run still carries the full 100k analytic mobiles.
    assert smoke.population <= 6
    assert smoke.fluid.population == 100_000


def test_hybrid_run_emits_gated_fluid_metrics():
    spec = get_scenario("metro-100k").smoke()
    metrics = run_scenario_spec(spec, seed=spec.seeds[0])
    assert metrics["fluid.background_population"] == 100_000.0
    assert metrics["fluid.updates"] >= 1.0
    assert metrics["fluid.peak_cell_load"] > 0.0
    # The discrete cohort still produces full packet-level metrics.
    assert metrics["received"] > 0
    assert all(isinstance(v, float) for v in metrics.values())


# ----------------------------------------------------------------------
# ROADMAP acceptance: hybrid vs all-discrete equivalence
# ----------------------------------------------------------------------
COHORT = 4
CONVERTED = 4
EQ_SEEDS = (1, 2, 3)


def _equivalence_spec(population, fluid=None):
    # Single-entry mixes make the per-index model/kind assignment
    # independent of the population size, and the shared name keeps
    # every cohort stream (mn0..mn3) identical across both specs — so
    # the tracked cohort sees the same mobility and traffic in both
    # worlds, and only the *other* mobiles' representation differs.
    return ScenarioSpec(
        name="hybrid-eq",
        description="hybrid-vs-discrete equivalence harness",
        population=population,
        duration=8.0,
        mobility_mix={"waypoint": 1.0},
        traffic_mix={"onoff-voice": 1.0},
        seeds=EQ_SEEDS,
        # Tight enough that the converted mobiles' load is felt on the
        # air (cohort delay rises ~15% over an empty channel), loose
        # enough that voice stays deliverable in both representations.
        macro_channel_bandwidth=500e3,
        warmup=1.0,
        drain=2.0,
        fluid=fluid,
    )


def _cohort_stats(spec, seed):
    built = build_scenario(spec, seed)
    built.execute()
    wanted = {f"{spec.name}.mn{index}" for index in range(COHORT)}
    rows = [
        (source, sink)
        for plan, source, sink in zip(built.flow_plans, built.sources, built.sinks)
        if plan.flow_id in wanted
    ]
    assert len(rows) == COHORT
    sent = sum(source.packets_sent for source, _sink in rows)
    received = sum(sink.received for _source, sink in rows)
    delays = [delay for _source, sink in rows for delay in sink.delays]
    return sent, received, sum(delays) / len(delays)


def test_hybrid_background_matches_all_discrete_within_confidence():
    """The ROADMAP acceptance check: converting part of the population
    to analytic background must not change what the tracked cohort
    experiences, within confidence bounds across seeds.

    ``onoff-voice`` is ~64 kbit/s at ~50% duty cycle, so the converted
    mobiles reappear as a background block with ``activity=0.5`` and
    ``per_mobile_bps=64e3``; ``mean_speed`` is the waypoint models'
    mean walking speed.
    """
    discrete = _equivalence_spec(COHORT + CONVERTED)
    hybrid = _equivalence_spec(
        COHORT,
        fluid={
            "population": CONVERTED,
            "mean_speed": 1.4,
            "activity": 0.5,
            "per_mobile_bps": 64e3,
            "update_period": 1.0,
        },
    )
    received_d, received_h, delay_d, delay_h = [], [], [], []
    for seed in EQ_SEEDS:
        sent_d, rec_d, del_d = _cohort_stats(discrete, seed)
        sent_h, rec_h, del_h = _cohort_stats(hybrid, seed)
        # The cohort's *offered* traffic is identical by construction:
        # sources draw from the same named streams in both worlds.
        assert sent_d == sent_h
        received_d.append(float(rec_d))
        received_h.append(float(rec_h))
        delay_d.append(del_d)
        delay_h.append(del_h)

    def compatible(a_samples, b_samples, slack):
        a = mean_confidence(a_samples)
        b = mean_confidence(b_samples)
        gap = abs(a.mean - b.mean)
        return gap <= a.half_width + b.half_width or gap <= slack * max(
            a.mean, b.mean
        )

    # Delivery and delay must agree within the seeds' confidence
    # intervals (with a small relative floor for near-zero variance).
    assert compatible(received_d, received_h, slack=0.02)
    assert compatible(delay_d, delay_h, slack=0.10)
