"""Tests for the execution engine: backend equivalence, per-world link
registry isolation, and the confidence passthrough in sweep()."""

import multiprocessing

import pytest

from repro.experiments.ablations import experiment_t1
from repro.experiments.exec import (
    ProcessPoolBackend,
    SerialBackend,
    backend_for_jobs,
    get_default_backend,
    set_default_backend,
)
from repro.experiments.runner import replicate, replicate_grid, sweep
from repro.multitier.architecture import MultiTierWorld

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")


def _world_scenario(seed: int) -> dict[str, float]:
    """A real simulation whose metrics include whole-world accounting.

    The hop totals are exactly the numbers a leaking (global) link
    registry would corrupt across back-to-back or concurrent runs.
    """
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    world.sim.run(until=2.0)
    totals = world.protocol_hop_totals()
    return {
        "hop_total": float(sum(totals.values())),
        "link_count": float(len(world.network.link_registry)),
        "seed_echo": float(seed),
    }


# ----------------------------------------------------------------------
# Backend basics
# ----------------------------------------------------------------------
def test_serial_backend_preserves_job_order():
    jobs = [lambda value=v: value for v in range(7)]
    assert SerialBackend().run(jobs) == list(range(7))


@needs_fork
def test_process_pool_preserves_job_order():
    jobs = [lambda value=v: value for v in range(11)]
    assert ProcessPoolBackend(3).run(jobs) == list(range(11))


@needs_fork
def test_process_pool_propagates_job_failure():
    def boom():
        raise ValueError("scenario exploded")

    with pytest.raises(RuntimeError, match="scenario exploded"):
        ProcessPoolBackend(2).run([lambda: 1, boom, lambda: 3])


@needs_fork
def test_process_pool_unpicklable_result_fails_instead_of_hanging():
    def returns_closure():
        return lambda: 1  # closures can't cross the result queue

    with pytest.raises(RuntimeError, match="pickle|failed"):
        ProcessPoolBackend(2).run([lambda: 1, returns_closure, lambda: 3])


def test_process_pool_rejects_bad_job_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(0)


def test_backend_for_jobs_selection():
    assert isinstance(backend_for_jobs(None), SerialBackend)
    assert isinstance(backend_for_jobs(1), SerialBackend)
    pool = backend_for_jobs(4)
    assert isinstance(pool, ProcessPoolBackend)
    assert pool.jobs == 4


def test_default_backend_set_and_restore():
    original = get_default_backend()
    replacement = SerialBackend()
    try:
        assert set_default_backend(replacement) is original
        assert get_default_backend() is replacement
    finally:
        set_default_backend(original)


# ----------------------------------------------------------------------
# Equivalence: identical metrics on every backend
# ----------------------------------------------------------------------
@needs_fork
@pytest.mark.parametrize("jobs", [2, 3])
def test_replicate_identical_across_backends(jobs):
    seeds = [1, 2, 3]
    serial = replicate(_world_scenario, seeds, backend=SerialBackend())
    pooled = replicate(_world_scenario, seeds, backend=ProcessPoolBackend(jobs))
    assert serial.samples == pooled.samples
    assert set(serial.metrics) == set(pooled.metrics)
    for name in serial.metrics:
        assert serial.metrics[name] == pooled.metrics[name]


@needs_fork
def test_sweep_identical_across_backends():
    def make_scenario(x):
        def scenario(seed: int) -> dict[str, float]:
            result = _world_scenario(seed)
            result["x_echo"] = float(x)
            return result

        return scenario

    kwargs = dict(
        experiment_id="TEST",
        title="engine equivalence sweep",
        x_label="x",
        x_values=[1, 2],
        make_scenario=make_scenario,
        seeds=[1, 2],
        metric_names=["hop_total", "link_count", "x_echo"],
    )
    serial = sweep(backend=SerialBackend(), **kwargs)
    pooled = sweep(backend=ProcessPoolBackend(2), **kwargs)
    assert serial.series == pooled.series
    assert serial.text == pooled.text


@needs_fork
def test_t1_identical_across_backends():
    serial = experiment_t1(backend=SerialBackend())
    pooled = experiment_t1(backend=ProcessPoolBackend(3))
    assert serial.series == pooled.series
    assert serial.text == pooled.text


# ----------------------------------------------------------------------
# Link-registry isolation (no reset, no cross-contamination)
# ----------------------------------------------------------------------
def test_back_to_back_worlds_do_not_cross_contaminate():
    first = _world_scenario(1)
    second = _world_scenario(1)  # same workload, no reset in between
    # A class-level registry would double the second run's totals.
    assert second == first
    assert first["hop_total"] > 0


def test_link_registry_is_freed_with_its_simulator():
    """No module-level root may pin finished worlds in memory."""
    import gc
    import weakref

    world = MultiTierWorld()
    world.sim.run(until=0.5)
    assert len(world.network.link_registry) > 0
    sim_ref = weakref.ref(world.sim)
    del world
    gc.collect()
    assert sim_ref() is None


def test_world_totals_are_frozen_against_later_worlds():
    world_a = MultiTierWorld()
    mn = world_a.add_mobile("mn")
    assert mn.initial_attach(world_a.domain1["B"])
    world_a.sim.run(until=2.0)
    totals_a = world_a.protocol_hop_totals()

    world_b = MultiTierWorld()
    other = world_b.add_mobile("mn")
    assert other.initial_attach(world_b.domain1["B"])
    world_b.sim.run(until=2.0)

    assert world_a.protocol_hop_totals() == totals_a
    assert world_b.protocol_hop_totals() == totals_a  # same deterministic run


# ----------------------------------------------------------------------
# replicate_grid and the E8 job entry point
# ----------------------------------------------------------------------
def test_replicate_grid_matches_per_scenario_replicate():
    def make_scenario(factor):
        def scenario(seed: int) -> dict[str, float]:
            return {"value": float(seed * factor)}

        return scenario

    scenarios = [make_scenario(f) for f in (1, 10)]
    grid = replicate_grid(scenarios, seeds=[1, 2, 3])
    singles = [replicate(scenario, seeds=[1, 2, 3]) for scenario in scenarios]
    assert [r.samples for r in grid] == [r.samples for r in singles]
    assert [r.metrics for r in grid] == [r.metrics for r in singles]


def test_run_scheme_rejects_unknown_name():
    from repro.experiments import run_scheme

    with pytest.raises(ValueError, match="unknown scheme"):
        run_scheme("no-such-scheme", seed=1)


# ----------------------------------------------------------------------
# sweep() confidence passthrough
# ----------------------------------------------------------------------
def test_sweep_passes_confidence_through():
    def make_scenario(x):
        def scenario(seed: int) -> dict[str, float]:
            return {"value": float(seed * x)}

        return scenario

    kwargs = dict(
        experiment_id="TEST",
        title="confidence passthrough",
        x_label="x",
        x_values=[1, 2],
        make_scenario=make_scenario,
        seeds=range(8),
        metric_names=["value"],
    )
    narrow = sweep(confidence=0.50, **kwargs)
    wide = sweep(confidence=0.99, **kwargs)
    assert len(narrow.replications) == 2
    for low, high in zip(narrow.replications, wide.replications):
        assert low["value"].mean == high["value"].mean
        assert low["value"].half_width < high["value"].half_width
