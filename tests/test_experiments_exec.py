"""Tests for the execution engine: backend equivalence, per-world link
registry isolation, and the confidence passthrough in sweep()."""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.experiments.ablations import experiment_t1
from repro.experiments.exec import (
    ProcessPoolBackend,
    RemoteTraceback,
    SerialBackend,
    backend_for_jobs,
    get_default_backend,
    set_default_backend,
)
from repro.experiments.runner import replicate, replicate_grid, sweep
from repro.multitier.architecture import MultiTierWorld

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")


def _world_scenario(seed: int) -> dict[str, float]:
    """A real simulation whose metrics include whole-world accounting.

    The hop totals are exactly the numbers a leaking (global) link
    registry would corrupt across back-to-back or concurrent runs.
    """
    world = MultiTierWorld()
    mn = world.add_mobile("mn")
    assert mn.initial_attach(world.domain1["B"])
    world.sim.run(until=2.0)
    totals = world.protocol_hop_totals()
    return {
        "hop_total": float(sum(totals.values())),
        "link_count": float(len(world.network.link_registry)),
        "seed_echo": float(seed),
    }


# ----------------------------------------------------------------------
# Backend basics
# ----------------------------------------------------------------------
def test_serial_backend_preserves_job_order():
    jobs = [lambda value=v: value for v in range(7)]
    assert SerialBackend().run(jobs) == list(range(7))


@needs_fork
def test_process_pool_preserves_job_order():
    jobs = [lambda value=v: value for v in range(11)]
    assert ProcessPoolBackend(3).run(jobs) == list(range(11))


@needs_fork
def test_process_pool_raises_original_exception_type():
    """A job failure surfaces as its original type, not RuntimeError."""

    def boom():
        raise ValueError("scenario exploded")

    with pytest.raises(ValueError, match="scenario exploded") as excinfo:
        ProcessPoolBackend(2).run([lambda: 1, boom, lambda: 3])
    # The worker-side traceback travels along as the cause.
    assert isinstance(excinfo.value.__cause__, RemoteTraceback)
    assert "scenario exploded" in str(excinfo.value.__cause__)


class _LoadsHostileError(Exception):
    """Pickles fine but cannot unpickle: BaseException.__reduce__ stores
    args=(message,), and __init__ then demands a second argument."""

    def __init__(self, key, value):
        super().__init__(f"{key}={value}")


@needs_fork
def test_process_pool_reports_exception_that_fails_to_unpickle():
    """dumps-ok/loads-fail exceptions must not crash the queue reader."""

    def boom():
        raise _LoadsHostileError("buffer", 64)

    with pytest.raises(RuntimeError, match="buffer=64") as excinfo:
        ProcessPoolBackend(2).run([lambda: 1, boom])
    assert "unpicklable exception" in str(excinfo.value)


@needs_fork
def test_process_pool_unpicklable_result_fails_instead_of_hanging():
    def returns_closure():
        return lambda: 1  # closures can't cross the result queue

    # pickling the closure raises (AttributeError / PicklingError) in
    # the worker; that original exception type reaches the caller.
    with pytest.raises((AttributeError, pickle.PicklingError, TypeError)):
        ProcessPoolBackend(2).run([lambda: 1, returns_closure, lambda: 3])


@needs_fork
def test_process_pool_fails_fast_on_first_failure(tmp_path):
    """The first failure aborts the batch: trailing jobs never run."""

    def boom():
        raise KeyError("first job dies immediately")

    def slow_marker(tag):
        def job():
            time.sleep(0.5)
            (tmp_path / f"ran-{tag}").touch()
            return tag

        return job

    # One worker claims the failing job 0 and dies; the other starts a
    # slow job at most.  The parent aborts on the failure message and
    # terminates the survivor, so nearly all of the eight slow jobs
    # never run — under the old semantics all eight completed first.
    jobs = [boom] + [slow_marker(tag) for tag in range(8)]
    started = time.perf_counter()
    with pytest.raises(KeyError):
        ProcessPoolBackend(2).run(jobs)
    elapsed = time.perf_counter() - started
    completed = len(list(tmp_path.iterdir()))
    assert completed <= 2, f"batch was not aborted: {completed} jobs finished"
    # Completing the batch would take > 4 s even perfectly parallel.
    assert elapsed < 3.0


@needs_fork
def test_process_pool_steals_work_from_busy_workers(tmp_path):
    """Dynamic claiming: fast jobs drain while one worker is stuck."""
    quick_tags = range(6)

    def slow():
        # Barrier, not a sleep: hold this worker until every quick job
        # has finished, so the test is deterministic under load.  Only
        # the *other* worker can create the markers — under the old
        # static round-robin split it would own jobs 2, 4 and 6 and the
        # barrier could never clear before the timeout.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if all((tmp_path / f"quick-{t}").exists() for t in quick_tags):
                break
            time.sleep(0.01)
        return ("slow", os.getpid())

    def quick(tag):
        def job():
            (tmp_path / f"quick-{tag}").touch()
            return (tag, os.getpid())

        return job

    results = ProcessPoolBackend(2).run([slow] + [quick(t) for t in quick_tags])
    slow_pid = results[0][1]
    quick_pids = {pid for _, pid in results[1:]}
    assert all((tmp_path / f"quick-{t}").exists() for t in quick_tags)
    assert slow_pid not in quick_pids


def test_process_pool_warns_when_degrading_to_serial(capsys):
    backend = ProcessPoolBackend(4)
    backend._can_fork = False  # simulate a fork-less platform
    assert backend.run([lambda value=v: value for v in range(3)]) == [0, 1, 2]
    err = capsys.readouterr().err
    assert "--jobs 4" in err and "serial" in err
    # The warning is once per backend, not once per batch.
    backend.run([lambda: 0])
    assert "--jobs" not in capsys.readouterr().err


def test_process_pool_no_warning_for_single_job_batches(capsys):
    backend = ProcessPoolBackend(4)
    backend._can_fork = False
    assert backend.run([lambda: 42]) == [42]
    # A one-job batch is serial on every platform; nothing degraded.
    assert capsys.readouterr().err == ""


def test_process_pool_rejects_bad_job_count():
    with pytest.raises(ValueError):
        ProcessPoolBackend(0)


def test_backend_for_jobs_selection():
    assert isinstance(backend_for_jobs(None), SerialBackend)
    assert isinstance(backend_for_jobs(1), SerialBackend)
    pool = backend_for_jobs(4)
    assert isinstance(pool, ProcessPoolBackend)
    assert pool.jobs == 4


def test_default_backend_set_and_restore():
    original = get_default_backend()
    replacement = SerialBackend()
    try:
        assert set_default_backend(replacement) is original
        assert get_default_backend() is replacement
    finally:
        set_default_backend(original)


# ----------------------------------------------------------------------
# Equivalence: identical metrics on every backend
# ----------------------------------------------------------------------
@needs_fork
@pytest.mark.parametrize("jobs", [2, 3])
def test_replicate_identical_across_backends(jobs):
    seeds = [1, 2, 3]
    serial = replicate(_world_scenario, seeds, backend=SerialBackend())
    pooled = replicate(_world_scenario, seeds, backend=ProcessPoolBackend(jobs))
    assert serial.samples == pooled.samples
    assert set(serial.metrics) == set(pooled.metrics)
    for name in serial.metrics:
        assert serial.metrics[name] == pooled.metrics[name]


@needs_fork
def test_sweep_identical_across_backends():
    def make_scenario(x):
        def scenario(seed: int) -> dict[str, float]:
            result = _world_scenario(seed)
            result["x_echo"] = float(x)
            return result

        return scenario

    kwargs = dict(
        experiment_id="TEST",
        title="engine equivalence sweep",
        x_label="x",
        x_values=[1, 2],
        make_scenario=make_scenario,
        seeds=[1, 2],
        metric_names=["hop_total", "link_count", "x_echo"],
    )
    serial = sweep(backend=SerialBackend(), **kwargs)
    pooled = sweep(backend=ProcessPoolBackend(2), **kwargs)
    assert serial.series == pooled.series
    assert serial.text == pooled.text


@needs_fork
def test_t1_identical_across_backends():
    serial = experiment_t1(backend=SerialBackend())
    pooled = experiment_t1(backend=ProcessPoolBackend(3))
    assert serial.series == pooled.series
    assert serial.text == pooled.text


# ----------------------------------------------------------------------
# Link-registry isolation (no reset, no cross-contamination)
# ----------------------------------------------------------------------
def test_back_to_back_worlds_do_not_cross_contaminate():
    first = _world_scenario(1)
    second = _world_scenario(1)  # same workload, no reset in between
    # A class-level registry would double the second run's totals.
    assert second == first
    assert first["hop_total"] > 0


def test_link_registry_is_freed_with_its_simulator():
    """No module-level root may pin finished worlds in memory."""
    import gc
    import weakref

    world = MultiTierWorld()
    world.sim.run(until=0.5)
    assert len(world.network.link_registry) > 0
    sim_ref = weakref.ref(world.sim)
    del world
    gc.collect()
    assert sim_ref() is None


def test_world_totals_are_frozen_against_later_worlds():
    world_a = MultiTierWorld()
    mn = world_a.add_mobile("mn")
    assert mn.initial_attach(world_a.domain1["B"])
    world_a.sim.run(until=2.0)
    totals_a = world_a.protocol_hop_totals()

    world_b = MultiTierWorld()
    other = world_b.add_mobile("mn")
    assert other.initial_attach(world_b.domain1["B"])
    world_b.sim.run(until=2.0)

    assert world_a.protocol_hop_totals() == totals_a
    assert world_b.protocol_hop_totals() == totals_a  # same deterministic run


# ----------------------------------------------------------------------
# replicate_grid and the E8 job entry point
# ----------------------------------------------------------------------
def test_replicate_grid_matches_per_scenario_replicate():
    def make_scenario(factor):
        def scenario(seed: int) -> dict[str, float]:
            return {"value": float(seed * factor)}

        return scenario

    scenarios = [make_scenario(f) for f in (1, 10)]
    grid = replicate_grid(scenarios, seeds=[1, 2, 3])
    singles = [replicate(scenario, seeds=[1, 2, 3]) for scenario in scenarios]
    assert [r.samples for r in grid] == [r.samples for r in singles]
    assert [r.metrics for r in grid] == [r.metrics for r in singles]


def test_run_scheme_rejects_unknown_name():
    from repro.experiments import run_scheme

    with pytest.raises(ValueError, match="unknown scheme"):
        run_scheme("no-such-scheme", seed=1)


# ----------------------------------------------------------------------
# sweep() confidence passthrough
# ----------------------------------------------------------------------
def test_sweep_passes_confidence_through():
    def make_scenario(x):
        def scenario(seed: int) -> dict[str, float]:
            return {"value": float(seed * x)}

        return scenario

    kwargs = dict(
        experiment_id="TEST",
        title="confidence passthrough",
        x_label="x",
        x_values=[1, 2],
        make_scenario=make_scenario,
        seeds=range(8),
        metric_names=["value"],
    )
    narrow = sweep(confidence=0.50, **kwargs)
    wide = sweep(confidence=0.99, **kwargs)
    assert len(narrow.replications) == 2
    for low, high in zip(narrow.replications, wide.replications):
        assert low["value"].mean == high["value"].mean
        assert low["value"].half_width < high["value"].half_width
